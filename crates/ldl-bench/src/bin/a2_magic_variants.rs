//! A2 — plain vs supplementary magic sets ([BMSU 85] variants).
//!
//! The plain (non-supplementary) rewriting re-evaluates rule-body
//! prefixes inside every magic rule; the supplementary variant
//! materializes each prefix once. The trade-off is classic space vs
//! time: supplementaries add materialized relations but remove repeated
//! joins. We compare derived/produced tuples and wall time on the sg
//! clique and on a rule with a long shared prefix.
//!
//! Run: `cargo run --release -p ldl-bench --bin a2_magic_variants`

use ldl_bench::table::{fnum, Table};
use ldl_bench::workload::same_generation;
use ldl_core::adorn::{adorn_program, GreedySip};
use ldl_core::parser::{parse_program, parse_query};
use ldl_core::Program;
use ldl_eval::magic::{magic_rewrite, magic_rewrite_supplementary, MagicProgram};
use ldl_eval::naive::FixpointConfig;
use ldl_eval::seminaive::eval_program_seminaive;
use ldl_storage::Database;
use std::fmt::Write as _;
use std::time::Instant;

fn run(magic: &MagicProgram, program: &Program, label: &str, t: &mut Table) {
    let mut db = Database::from_program(program);
    db.relation_mut(magic.seed_pred).insert(magic.seed.clone());
    let start = Instant::now();
    let (derived, metrics) = eval_program_seminaive(
        &magic.program,
        &db,
        &FixpointConfig::with_max_iterations(100_000),
    )
    .unwrap();
    let ms = start.elapsed().as_secs_f64() * 1000.0;
    let answers = derived
        .get(&magic.answer_pred)
        .map(|r| r.len())
        .unwrap_or(0);
    t.row(&[
        label.to_string(),
        magic.program.rules.len().to_string(),
        answers.to_string(),
        metrics.tuples_derived.to_string(),
        metrics.tuples_produced.to_string(),
        fnum(ms),
    ]);
}

fn compare(title: &str, program: &Program, qtext: &str) {
    println!("{title} — query {qtext}");
    let query = parse_query(qtext).unwrap();
    let adorned = adorn_program(program, query.pred(), query.adornment(), &GreedySip);
    let plain = magic_rewrite(&adorned, program, &query).unwrap();
    let sup = magic_rewrite_supplementary(&adorned, program, &query).unwrap();
    let mut t = Table::new(&["variant", "rules", "answers", "derived", "produced", "ms"]);
    run(&plain, program, "plain", &mut t);
    run(&sup, program, "supplementary", &mut t);
    println!("{t}");
}

fn main() {
    println!("A2: plain vs supplementary magic-set rewriting\n");

    let (sg, leaf) = same_generation(2, 9);
    compare(
        "same-generation, binary tree depth 9",
        &sg,
        &format!("sg({leaf}, Y)?"),
    );

    // A rule with a long prefix shared by two derived literals — the
    // case supplementary magic was designed for.
    let mut text = String::new();
    for i in 0..200 {
        writeln!(text, "e({}, {}).", i, i + 1).unwrap();
        writeln!(text, "f({}, {}).", i, (i * 7) % 200).unwrap();
    }
    text.push_str(
        "hop(X, Y) <- e(X, Y).\n\
         hop(X, Y) <- e(X, Z), hop(Z, Y).\n\
         two(X, Y) <- f(X, A), f(A, B), hop(B, M), hop(M, Y).\n",
    );
    let program = parse_program(&text).unwrap();
    compare(
        "shared 2-literal prefix before two recursive calls",
        &program,
        "two(0, Y)?",
    );

    println!(
        "Expected shape: identical answers; supplementary adds sup_* rules\n\
         and rows but stops re-joining the prefix — it wins when prefixes\n\
         are long and shared, loses when rules are short (pure overhead),\n\
         matching the classic [BMSU 85] trade-off."
    );
}
