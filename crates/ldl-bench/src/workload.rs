//! Workload generators.
//!
//! Three families:
//!
//! * **Random conjunctive queries** — join graphs with random
//!   cardinalities and selectivities in four shapes (chain, star, cycle,
//!   random-connected), reproducing the random-query/random-database
//!   protocol of [Vil 87] (experiments E1–E3, E8);
//! * **Recursive datasets** — same-generation trees, transitive-closure
//!   chains/DAGs, and bill-of-materials hierarchies, the workloads the
//!   paper's recursion methods target (E5, E6, recursion benches);
//! * **Layered rule bases** — AND/OR rule towers with shared
//!   subpredicates for the NR-OPT memoization experiment (E4).

use ldl_core::parser::parse_program;
use ldl_core::{Pred, Program};
use ldl_optimizer::JoinGraph;
use ldl_storage::Database;
use ldl_support::SplitMix64;
use std::fmt::Write as _;

/// Join-graph shapes for random conjunctive queries.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Shape {
    /// R0 - R1 - ... - R(n-1).
    Chain,
    /// Hub R0 joined with every satellite.
    Star,
    /// Chain plus a closing edge (cyclic).
    Cycle,
    /// Random connected graph with ~1.5·n edges.
    Random,
}

impl Shape {
    /// All shapes.
    pub const ALL: [Shape; 4] = [Shape::Chain, Shape::Star, Shape::Cycle, Shape::Random];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Shape::Chain => "chain",
            Shape::Star => "star",
            Shape::Cycle => "cycle",
            Shape::Random => "random",
        }
    }
}

/// A random join graph: cardinalities 10¹–10⁵, selectivities 10⁻⁴–10⁻⁰·⁵.
pub fn random_join_graph(shape: Shape, n: usize, seed: u64) -> JoinGraph {
    assert!(n >= 2);
    let mut rng = SplitMix64::seed_from_u64(seed);
    let cards: Vec<f64> = (0..n)
        .map(|_| 10f64.powf(rng.gen_range(1.0..5.0)).round())
        .collect();
    let mut g = JoinGraph::new(cards);
    let sel = |rng: &mut SplitMix64| 10f64.powf(rng.gen_range(-4.0..-0.5));
    match shape {
        Shape::Chain => {
            for i in 0..n - 1 {
                let s = sel(&mut rng);
                g.set_selectivity(i, i + 1, s);
            }
        }
        Shape::Star => {
            for i in 1..n {
                let s = sel(&mut rng);
                g.set_selectivity(0, i, s);
            }
        }
        Shape::Cycle => {
            for i in 0..n - 1 {
                let s = sel(&mut rng);
                g.set_selectivity(i, i + 1, s);
            }
            let s = sel(&mut rng);
            g.set_selectivity(0, n - 1, s);
        }
        Shape::Random => {
            // Random spanning tree, then extra edges up to ~1.5 n.
            for i in 1..n {
                let j = rng.gen_range(0..i);
                let s = sel(&mut rng);
                g.set_selectivity(i, j, s);
            }
            let extra = n / 2;
            for _ in 0..extra {
                let i = rng.gen_range(0..n);
                let j = rng.gen_range(0..n);
                if i != j {
                    let s = sel(&mut rng);
                    g.set_selectivity(i, j, s);
                }
            }
        }
    }
    g
}

/// Same-generation dataset: a complete tree of the given branching and
/// depth. `up(child, parent)` edges, `dn` their inverses, and
/// `flat(root, root)`, so `sg(x, y)` holds exactly for nodes at equal
/// depth (in particular every leaf pair). Returns the program (sg rules
/// + facts) and the id of one leaf for bound queries.
pub fn same_generation(branching: usize, depth: usize) -> (Program, i64) {
    assert!(branching >= 1 && depth >= 1);
    let mut text = String::new();
    // Nodes numbered by BFS: root = 0.
    let mut next_id: i64 = 1;
    let mut level: Vec<i64> = vec![0];
    for _ in 0..depth {
        let mut next_level = Vec::new();
        for &parent in &level {
            for _ in 0..branching {
                let c = next_id;
                next_id += 1;
                writeln!(text, "up({c}, {parent}).").unwrap();
                writeln!(text, "dn({parent}, {c}).").unwrap();
                next_level.push(c);
            }
        }
        level = next_level;
    }
    writeln!(text, "flat(0, 0).").unwrap();
    text.push_str(
        "sg(X, Y) <- flat(X, Y).\n\
         sg(X, Y) <- up(X, X1), sg(Y1, X1), dn(Y1, Y).\n",
    );
    let leaf = level[0];
    (
        parse_program(&text).expect("generated sg program parses"),
        leaf,
    )
}

/// Transitive-closure dataset: `components` disjoint chains of
/// `chain_len` edges each. Querying inside one chain lets magic sets
/// ignore the others. Returns the program and the first node id of the
/// first chain.
pub fn transitive_closure_chains(chain_len: usize, components: usize) -> (Program, i64) {
    assert!(chain_len >= 1 && components >= 1);
    let mut text = String::new();
    for c in 0..components {
        let base = (c * (chain_len + 1)) as i64;
        for i in 0..chain_len {
            writeln!(text, "e({}, {}).", base + i as i64, base + i as i64 + 1).unwrap();
        }
    }
    text.push_str("tc(X, Y) <- e(X, Y).\ntc(X, Y) <- e(X, Z), tc(Z, Y).\n");
    (
        parse_program(&text).expect("generated tc program parses"),
        0,
    )
}

/// Bill-of-materials: `roots` assemblies, each a tree of subparts with
/// the given branching/depth; `contains(part, sub, qty)` base facts and
/// a cost-rollup-free reachability program:
/// `uses(P, S) <- contains(P, S, Q).  uses(P, S) <- contains(P, M, Q), uses(M, S).`
pub fn bill_of_materials(roots: usize, branching: usize, depth: usize) -> (Program, i64) {
    let mut text = String::new();
    let mut next_id: i64 = 0;
    for _ in 0..roots {
        let root = next_id;
        next_id += 1;
        let mut level = vec![root];
        for d in 0..depth {
            let mut nl = Vec::new();
            for &p in &level {
                for b in 0..branching {
                    let s = next_id;
                    next_id += 1;
                    let qty = 1 + ((d + b) % 4) as i64;
                    writeln!(text, "contains({p}, {s}, {qty}).").unwrap();
                    nl.push(s);
                }
            }
            level = nl;
        }
    }
    text.push_str(
        "uses(P, S) <- contains(P, S, Q).\n\
         uses(P, S) <- contains(P, M, Q), uses(M, S).\n",
    );
    (parse_program(&text).expect("generated BOM parses"), 0)
}

/// Selective-range workload (P3): `f(K, V)` holds `groups × per_group`
/// facts (every key paired with every value), `m` two keys, and two
/// range rules — an equality-prefix one (`K` bound through `m`, `V`
/// windowed) and an empty-prefix one (`V` thresholded over the whole
/// table). The windows select ~10% of each probed run, so ordered range
/// probes enumerate a small slice where scans walk the full table.
pub fn range_scan(groups: usize, per_group: usize) -> Program {
    assert!(groups >= 2 && per_group >= 10);
    let mut text = String::new();
    for k in 0..groups {
        for v in 0..per_group {
            writeln!(text, "f({k}, {v}).").unwrap();
        }
    }
    writeln!(text, "m(0). m({}).", groups - 1).unwrap();
    let lo = per_group / 2;
    let hi = lo + per_group / 10;
    writeln!(text, "hit(K, V) <- m(K), f(K, V), V >= {lo}, V < {hi}.").unwrap();
    writeln!(
        text,
        "top(V) <- f(K, V), V > {}.",
        per_group - per_group / 10
    )
    .unwrap();
    parse_program(&text).expect("generated range workload parses")
}

/// Layered nonrecursive rule base for the memoization experiment (E4):
/// `width` predicates per layer, `depth` layers; every layer-`k`
/// predicate references **all** layer-`k+1` predicates, so subtrees are
/// massively shared. Returns the program and the root predicate.
pub fn layered_rulebase(width: usize, depth: usize) -> (Program, Pred) {
    assert!(width >= 1 && depth >= 1);
    let mut text = String::new();
    writeln!(
        text,
        "root(X) <- {}.",
        (0..width)
            .map(|w| format!("p_0_{w}(X)"))
            .collect::<Vec<_>>()
            .join(", ")
    )
    .unwrap();
    for d in 0..depth {
        for w in 0..width {
            if d + 1 == depth {
                writeln!(text, "p_{d}_{w}(X) <- base_{w}(X).").unwrap();
            } else {
                let body: Vec<String> = (0..width)
                    .map(|w2| format!("p_{}_{w2}(X)", d + 1))
                    .collect();
                writeln!(text, "p_{d}_{w}(X) <- {}.", body.join(", ")).unwrap();
            }
        }
    }
    (
        parse_program(&text).expect("generated layered program parses"),
        Pred::new("root", 1),
    )
}

/// One wide chain rule `q(X0, Xn) <- a1(X0, X1), …, an(Xn-1, Xn)` with
/// seeded synthetic statistics spanning three orders of magnitude per
/// base predicate, so join order genuinely matters. The workload behind
/// the `plan_enum` bench (E3 successor): the optimizer must order an
/// `n`-literal body where exhaustive enumeration costs `n!`.
pub fn wide_join_rule(n: usize, seed: u64) -> (Program, Database) {
    assert!((1..=64).contains(&n), "chain length out of range");
    let mut rng = SplitMix64::seed_from_u64(seed);
    let mut text = String::new();
    let body: Vec<String> = (1..=n).map(|i| format!("a{i}(X{}, X{i})", i - 1)).collect();
    writeln!(text, "q(X0, X{n}) <- {}.", body.join(", ")).unwrap();
    // A couple of facts per predicate keep the relations non-empty;
    // the synthetic statistics drive the cost model.
    for i in 1..=n {
        for j in 0..3 {
            writeln!(text, "a{i}({j}, {}).", j + 1).unwrap();
        }
    }
    let program = parse_program(&text).expect("generated chain rule parses");
    let mut db = Database::from_program(&program);
    for i in 1..=n {
        let card = 10f64.powf(rng.gen_range(1.0..4.0)).round();
        let d0 = (card * rng.gen_range(0.1..1.0)).max(1.0);
        let d1 = (card * rng.gen_range(0.1..1.0)).max(1.0);
        db.set_stats(
            Pred::new(&format!("a{i}"), 2),
            ldl_storage::Stats::synthetic(card, vec![d0, d1]),
        );
    }
    (program, db)
}

/// A database with synthetic statistics for every base predicate of a
/// program (uniform cardinality/distincts drawn from the rng).
pub fn synthetic_database(program: &Program, seed: u64) -> Database {
    let mut rng = SplitMix64::seed_from_u64(seed);
    let mut db = Database::new();
    for p in program.base_preds() {
        let card = 10f64.powf(rng.gen_range(1.0..4.0)).round();
        let distinct = (card * rng.gen_range(0.1..1.0)).max(1.0);
        db.set_stats(p, ldl_storage::Stats::uniform(card, p.arity, distinct));
    }
    db
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldl_eval::{evaluate_query, FixpointConfig, Method};

    #[test]
    fn shapes_produce_expected_edge_counts() {
        let n = 6;
        assert_eq!(random_join_graph(Shape::Chain, n, 1).edges().len(), n - 1);
        assert_eq!(random_join_graph(Shape::Star, n, 1).edges().len(), n - 1);
        assert_eq!(random_join_graph(Shape::Cycle, n, 1).edges().len(), n);
        assert!(random_join_graph(Shape::Random, n, 1).edges().len() >= n - 1);
    }

    #[test]
    fn generators_are_deterministic() {
        let a = random_join_graph(Shape::Random, 7, 99);
        let b = random_join_graph(Shape::Random, 7, 99);
        assert_eq!(a.edges(), b.edges());
    }

    #[test]
    fn sg_tree_has_expected_size() {
        let (p, leaf) = same_generation(2, 3);
        // 2 + 4 + 8 = 14 up edges, 14 dn edges, 1 flat fact.
        assert_eq!(p.facts.len(), 14 * 2 + 1);
        assert_eq!(leaf, 7); // first leaf in BFS numbering
    }

    #[test]
    fn sg_semantics_same_depth() {
        let (p, leaf) = same_generation(2, 2);
        let db = Database::from_program(&p);
        let q = ldl_core::parser::parse_query(&format!("sg({leaf}, Y)?")).unwrap();
        let ans = evaluate_query(&p, &db, &q, Method::SemiNaive, &FixpointConfig::default())
            .unwrap()
            .tuples;
        // 4 leaves at depth 2: sg(leaf, each of them).
        assert_eq!(ans.len(), 4);
    }

    #[test]
    fn tc_chains_are_disjoint() {
        let (p, start) = transitive_closure_chains(5, 3);
        let db = Database::from_program(&p);
        let q = ldl_core::parser::parse_query(&format!("tc({start}, Y)?")).unwrap();
        let ans = evaluate_query(&p, &db, &q, Method::Magic, &FixpointConfig::default())
            .unwrap()
            .tuples;
        assert_eq!(ans.len(), 5);
    }

    #[test]
    fn bom_uses_reaches_all_descendants() {
        let (p, root) = bill_of_materials(1, 2, 3);
        let db = Database::from_program(&p);
        let q = ldl_core::parser::parse_query(&format!("uses({root}, S)?")).unwrap();
        let ans = evaluate_query(&p, &db, &q, Method::SemiNaive, &FixpointConfig::default())
            .unwrap()
            .tuples;
        assert_eq!(ans.len(), 2 + 4 + 8);
    }

    #[test]
    fn range_scan_windows_select_a_slice() {
        let p = range_scan(4, 100);
        let db = Database::from_program(&p);
        let q = ldl_core::parser::parse_query("hit(K, V)?").unwrap();
        let ans = evaluate_query(&p, &db, &q, Method::SemiNaive, &FixpointConfig::default())
            .unwrap()
            .tuples;
        // Two m keys × the [50, 60) window.
        assert_eq!(ans.len(), 2 * 10);
        let q = ldl_core::parser::parse_query("top(V)?").unwrap();
        let ans = evaluate_query(&p, &db, &q, Method::SemiNaive, &FixpointConfig::default())
            .unwrap()
            .tuples;
        assert_eq!(ans.len(), 9); // V in 91..=99, deduplicated across keys
    }

    #[test]
    fn layered_rulebase_shape() {
        let (p, root) = layered_rulebase(3, 3);
        assert_eq!(root, Pred::new("root", 1));
        // 1 root rule + 3 layers × 3 preds.
        assert_eq!(p.rules.len(), 1 + 9);
    }

    #[test]
    fn synthetic_database_covers_base_preds() {
        let (p, _) = layered_rulebase(2, 2);
        let db = synthetic_database(&p, 7);
        for b in p.base_preds() {
            assert!(db.stats(b).cardinality >= 10.0);
        }
    }
}
