//! WAL-shipping replication: the replica-side runner and the feed's
//! wire encoding.
//!
//! A replica is an ordinary [`Service`] opened with
//! [`crate::service::ServiceOptions::replica`] plus one background
//! thread ([`spawn`]) that long-polls the primary's `subscribe` op with
//! the replica's local `(epoch, version)` position. The primary
//! answers with one of three shapes (see [`feed_to_json`]): records to
//! apply, "up to date", or a full bootstrap image when the position is
//! no longer servable. Shipped records are the **exact WAL frame
//! payloads** the primary committed — the replica appends the same
//! bytes to its own WAL and applies them through the same engine path,
//! so by the canonical-order determinism contract its state (and
//! digest) is bit-for-bit the primary's at the same version.
//!
//! The runner owns all failure handling: reconnect with capped
//! exponential backoff, torn streams (a half-written response line is
//! just an I/O error → reconnect; the position survives locally),
//! primary restarts (the new primary either still covers the position
//! or answers with a bootstrap), and divergence (epoch mismatch →
//! bootstrap). Progress and errors are published into the service's
//! [`ReplicationStatus`], surfaced through the `stats` op.

use crate::client::Client;
use crate::json::Json;
use crate::service::{Feed, Service};
use ldl_core::{LdlError, Result};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

/// Lowercase hex encoding of arbitrary bytes (WAL frame payloads and
/// bootstrap images travel as hex strings inside JSON).
pub fn encode_hex(bytes: &[u8]) -> String {
    let mut s = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        s.push_str(&format!("{b:02x}"));
    }
    s
}

/// Inverse of [`encode_hex`].
pub fn decode_hex(s: &str) -> Result<Vec<u8>> {
    if !s.len().is_multiple_of(2) || !s.bytes().all(|b| b.is_ascii_hexdigit()) {
        return Err(LdlError::Eval(format!(
            "replication: bad hex payload ({} chars)",
            s.len()
        )));
    }
    let mut out = Vec::with_capacity(s.len() / 2);
    for i in (0..s.len()).step_by(2) {
        out.push(u8::from_str_radix(&s[i..i + 2], 16).expect("checked hexdigits"));
    }
    Ok(out)
}

/// Epochs travel as 16-digit hex strings: they are full-range `u64`s
/// and the wire's numbers are `f64` (exact only to 2^53).
pub fn encode_epoch(epoch: u64) -> String {
    format!("{epoch:016x}")
}

/// Parses an epoch member; `0` (matching no minted epoch) when absent
/// or malformed, which makes the primary answer with a bootstrap.
pub fn decode_epoch(v: Option<&Json>) -> u64 {
    v.and_then(Json::as_str)
        .and_then(|s| u64::from_str_radix(s, 16).ok())
        .unwrap_or(0)
}

/// Serializes a [`Feed`] reply (plus the serving node's own epoch) into
/// the wire object for `wal_since` / `subscribe` responses.
pub fn feed_to_json(epoch: u64, feed: &Feed) -> Vec<(&'static str, Json)> {
    let e = ("epoch", Json::str(encode_epoch(epoch)));
    match feed {
        Feed::UpToDate { head } => vec![
            ("status", Json::str("up_to_date")),
            e,
            ("head", Json::int(*head as i64)),
        ],
        Feed::Records {
            head,
            records,
            behind_bytes,
        } => vec![
            ("status", Json::str("records")),
            e,
            ("head", Json::int(*head as i64)),
            ("behind_bytes", Json::int(*behind_bytes as i64)),
            (
                "records",
                Json::Arr(
                    records
                        .iter()
                        .map(|(seq, payload)| {
                            Json::Arr(vec![Json::int(*seq as i64), Json::str(encode_hex(payload))])
                        })
                        .collect(),
                ),
            ),
        ],
        Feed::Bootstrap {
            seq,
            program_text,
            db,
        } => vec![
            ("status", Json::str("bootstrap")),
            e,
            ("seq", Json::int(*seq as i64)),
            ("program", Json::str(program_text.clone())),
            ("db", Json::str(encode_hex(db))),
        ],
    }
}

/// A feed reply parsed off the wire — the client-side mirror of
/// [`Feed`], tagged with the primary's epoch.
#[derive(Debug)]
pub enum FeedResponse {
    /// The replica is at the primary's head.
    UpToDate {
        /// Primary's epoch.
        epoch: u64,
        /// Primary's published head.
        head: u64,
    },
    /// Records to append and apply, oldest first.
    Records {
        /// Primary's epoch.
        epoch: u64,
        /// Primary's published head.
        head: u64,
        /// `(seq, frame payload)` pairs.
        records: Vec<(u64, Vec<u8>)>,
        /// Retained bytes beyond this reply.
        behind_bytes: u64,
    },
    /// A full image to install.
    Bootstrap {
        /// Primary's epoch (the replica adopts it).
        epoch: u64,
        /// Version of the image.
        seq: u64,
        /// Rule base source text.
        program_text: String,
        /// Codec-encoded EDB.
        db: Vec<u8>,
    },
}

/// Parses a `wal_since` / `subscribe` response object.
pub fn feed_from_json(resp: &Json) -> Result<FeedResponse> {
    let epoch = decode_epoch(resp.get("epoch"));
    let int = |key: &str| resp.get(key).and_then(Json::as_int).unwrap_or(0) as u64;
    match resp.get("status").and_then(Json::as_str) {
        Some("up_to_date") => Ok(FeedResponse::UpToDate {
            epoch,
            head: int("head"),
        }),
        Some("records") => {
            let mut records = Vec::new();
            for item in resp
                .get("records")
                .and_then(Json::as_arr)
                .unwrap_or_default()
            {
                let pair = item.as_arr().unwrap_or_default();
                let (Some(seq), Some(hex)) = (
                    pair.first().and_then(Json::as_int),
                    pair.get(1).and_then(Json::as_str),
                ) else {
                    return Err(LdlError::Eval(
                        "replication: malformed record entry in feed response".into(),
                    ));
                };
                records.push((seq as u64, decode_hex(hex)?));
            }
            Ok(FeedResponse::Records {
                epoch,
                head: int("head"),
                records,
                behind_bytes: int("behind_bytes"),
            })
        }
        Some("bootstrap") => Ok(FeedResponse::Bootstrap {
            epoch,
            seq: int("seq"),
            program_text: resp
                .get("program")
                .and_then(Json::as_str)
                .unwrap_or("")
                .to_string(),
            db: decode_hex(resp.get("db").and_then(Json::as_str).unwrap_or(""))?,
        }),
        other => Err(LdlError::Eval(format!(
            "replication: feed response with unknown status {other:?}"
        ))),
    }
}

/// Records fetched per reply — small enough to keep apply batches (and
/// their single fsync) snappy, large enough to catch up quickly.
const MAX_RECORDS: u64 = 64;
/// Long-poll window: how long the primary may hold `subscribe` open
/// waiting for a commit past our position.
const WAIT_MS: u64 = 500;
const BACKOFF_BASE: Duration = Duration::from_millis(100);
const BACKOFF_CAP: Duration = Duration::from_secs(5);

/// Spawns the replication runner thread for a replica-role service.
/// The thread exits promptly once `stop` is set (it polls it between
/// requests and while backing off).
pub fn spawn(service: Arc<Service>, stop: Arc<AtomicBool>) -> thread::JoinHandle<()> {
    thread::Builder::new()
        .name("ldl-replicate".into())
        .spawn(move || run(&service, &stop))
        .expect("spawn replication runner")
}

/// The runner loop (public so tests can drive it on the current
/// thread). Requires `service` to have been opened in replica role.
pub fn run(service: &Service, stop: &AtomicBool) {
    let primary = service
        .primary_target()
        .expect("replication runner needs a replica-role service")
        .to_string();
    let mut backoff = BACKOFF_BASE;
    let mut connected_once = false;
    while !stop.load(Ordering::Relaxed) {
        match Client::connect(&primary) {
            Ok(mut client) => {
                if connected_once {
                    service.update_replication_status(|s| s.reconnects += 1);
                }
                connected_once = true;
                service.update_replication_status(|s| {
                    s.connected = true;
                    s.last_error = None;
                });
                match drive(service, &mut client, stop) {
                    Ok(()) => return, // stop requested
                    Err(e) => {
                        service.update_replication_status(|s| {
                            s.connected = false;
                            s.last_error = Some(e.to_string());
                        });
                    }
                }
                // A successful session resets the backoff.
                backoff = BACKOFF_BASE;
            }
            Err(e) => {
                if connected_once {
                    service.update_replication_status(|s| s.reconnects += 1);
                }
                service.update_replication_status(|s| {
                    s.connected = false;
                    s.last_error = Some(e.to_string());
                });
            }
        }
        sleep_unless_stopped(stop, backoff);
        backoff = (backoff * 2).min(BACKOFF_CAP);
    }
}

/// One connected session: poll, apply, repeat until an error or `stop`.
fn drive(service: &Service, client: &mut Client, stop: &AtomicBool) -> Result<()> {
    loop {
        if stop.load(Ordering::Relaxed) {
            return Ok(());
        }
        let (epoch, since) = service.position();
        let resp = client
            .subscribe(&encode_epoch(epoch), since, MAX_RECORDS, WAIT_MS)
            .map_err(|e| LdlError::Eval(format!("replication: {e}")))?;
        match feed_from_json(&resp)? {
            FeedResponse::UpToDate { head, .. } => {
                service.update_replication_status(|s| {
                    s.primary_head = head;
                    s.behind_bytes = 0;
                });
            }
            FeedResponse::Records {
                head,
                records,
                behind_bytes,
                ..
            } => {
                service.apply_replicated(&records)?;
                service.update_replication_status(|s| {
                    s.primary_head = head;
                    s.behind_bytes = behind_bytes;
                });
            }
            FeedResponse::Bootstrap {
                epoch,
                seq,
                program_text,
                db,
            } => {
                service.install_bootstrap(epoch, seq, &program_text, &db)?;
                service.update_replication_status(|s| {
                    s.primary_head = seq;
                    s.behind_bytes = 0;
                    s.bootstraps += 1;
                });
            }
        }
    }
}

fn sleep_unless_stopped(stop: &AtomicBool, total: Duration) {
    let step = Duration::from_millis(25);
    let mut slept = Duration::ZERO;
    while slept < total && !stop.load(Ordering::Relaxed) {
        thread::sleep(step);
        slept += step;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hex_roundtrip_and_rejects() {
        let bytes: Vec<u8> = (0u8..=255).collect();
        assert_eq!(decode_hex(&encode_hex(&bytes)).unwrap(), bytes);
        assert_eq!(encode_hex(&[0x00, 0xff]), "00ff");
        assert!(decode_hex("abc").is_err()); // odd length
        assert!(decode_hex("zz").is_err()); // not hex
        assert_eq!(decode_hex("").unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn epoch_roundtrip_full_range() {
        // Epochs exercise all 64 bits — the f64 wire number would lose
        // them, the hex string must not.
        for e in [0u64, 1, (1 << 53) + 1, u64::MAX] {
            let j = Json::str(encode_epoch(e));
            assert_eq!(decode_epoch(Some(&j)), e);
        }
        assert_eq!(decode_epoch(None), 0);
        assert_eq!(decode_epoch(Some(&Json::str("not hex"))), 0);
    }

    #[test]
    fn feed_shapes_roundtrip_the_wire() {
        let epoch = u64::MAX - 17;
        for feed in [
            Feed::UpToDate { head: 12 },
            Feed::Records {
                head: 12,
                records: vec![(11, vec![1, 2, 3]), (12, vec![0xff, 0x00])],
                behind_bytes: 99,
            },
            Feed::Bootstrap {
                seq: 7,
                program_text: "p(X) <- q(X).".into(),
                db: vec![4, 5, 6],
            },
        ] {
            let wire = Json::obj(feed_to_json(epoch, &feed));
            let text = wire.to_string();
            let parsed = feed_from_json(&crate::json::parse(&text).unwrap()).unwrap();
            match (&feed, &parsed) {
                (Feed::UpToDate { head }, FeedResponse::UpToDate { epoch: e, head: h }) => {
                    assert_eq!((*e, *h), (epoch, *head));
                }
                (
                    Feed::Records {
                        head,
                        records,
                        behind_bytes,
                    },
                    FeedResponse::Records {
                        epoch: e,
                        head: h,
                        records: r,
                        behind_bytes: b,
                    },
                ) => {
                    assert_eq!((*e, *h, *b), (epoch, *head, *behind_bytes));
                    assert_eq!(r, records);
                }
                (
                    Feed::Bootstrap {
                        seq,
                        program_text,
                        db,
                    },
                    FeedResponse::Bootstrap {
                        epoch: e,
                        seq: s,
                        program_text: p,
                        db: d,
                    },
                ) => {
                    assert_eq!((*e, *s), (epoch, *seq));
                    assert_eq!(p, program_text);
                    assert_eq!(d, db);
                }
                (f, p) => panic!("shape changed across the wire: {f:?} -> {p:?}"),
            }
        }
    }
}
