//! A minimal JSON value with parser and serializer — just enough for
//! the line-delimited wire protocol, keeping the workspace hermetic
//! (no external serde).
//!
//! Objects preserve insertion order (they are association lists), so a
//! serialized response is deterministic. Numbers are `f64`; the
//! protocol itself only ever carries integers and they round-trip
//! exactly up to 2^53.

use std::fmt;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, as an order-preserving association list.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from key/value pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Convenience string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Convenience integer value.
    pub fn int(i: i64) -> Json {
        Json::Num(i as f64)
    }

    /// Member lookup on an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an integer, if it is a whole number.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Json::Num(n) if n.fract() == 0.0 && n.abs() < 9.0e15 => Some(*n as i64),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => write!(f, "null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 9.0e15 {
                    write!(f, "{}", *n as i64)
                } else {
                    write!(f, "{n}")
                }
            }
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                write!(f, "[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
            Json::Obj(pairs) => {
                write!(f, "{{")?;
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write_escaped(f, k)?;
                    write!(f, ":{v}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    write!(f, "\"")?;
    for c in s.chars() {
        match c {
            '"' => write!(f, "\\\"")?,
            '\\' => write!(f, "\\\\")?,
            '\n' => write!(f, "\\n")?,
            '\r' => write!(f, "\\r")?,
            '\t' => write!(f, "\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    write!(f, "\"")
}

/// Parses one JSON value from `input` (the whole string must be
/// consumed apart from trailing whitespace).
pub fn parse(input: &str) -> Result<Json, String> {
    let bytes = input.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(format!("trailing input at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let k = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            pairs.push((k, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            // Surrogate pairs are not needed by this
                            // protocol; lone surrogates map to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                            self.pos += 4;
                        }
                        _ => return Err("bad escape".into()),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid UTF-8 in string")?;
                    let c = rest.chars().next().ok_or("unterminated string")?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii digits");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number '{text}'"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_protocol_shapes() {
        let v = Json::obj(vec![
            ("op", Json::str("query")),
            ("goal", Json::str("tc(1, Y)?")),
            ("n", Json::int(-42)),
            ("flag", Json::Bool(true)),
            ("rows", Json::Arr(vec![Json::str("(1, 2)"), Json::Null])),
        ]);
        let text = v.to_string();
        assert_eq!(parse(&text).unwrap(), v);
    }

    #[test]
    fn escapes_roundtrip() {
        let v = Json::str("line1\nline2\t\"quoted\" back\\slash");
        let text = v.to_string();
        let back = parse(&text).unwrap();
        assert_eq!(back, v);
        assert_eq!(parse(r#""Aé""#).unwrap(), Json::str("Aé"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1, 2").is_err());
        assert!(parse("nul").is_err());
        assert!(parse("{} trailing").is_err());
        assert!(parse(r#"{"a" 1}"#).is_err());
    }

    #[test]
    fn accessors() {
        let v = parse(r#"{"op":"x","n":3,"b":false,"a":[1,2]}"#).unwrap();
        assert_eq!(v.get("op").and_then(Json::as_str), Some("x"));
        assert_eq!(v.get("n").and_then(Json::as_int), Some(3));
        assert_eq!(v.get("b").and_then(Json::as_bool), Some(false));
        assert_eq!(
            v.get("a").and_then(Json::as_arr).map(<[Json]>::len),
            Some(2)
        );
        assert_eq!(v.get("missing"), None);
    }
}
