//! # ldl-serve — the transactional persistent EDB service
//!
//! The 1988 paper targets "knowledge and data intensive applications":
//! a shared base of facts serving many queries. This crate turns the
//! batch engine into that service — a resident [`Engine`] behind a
//! commit lock, durable across restarts, shared by concurrent sessions:
//!
//! * [`service`] — the core: [`service::Service`] owns the engine, a
//!   write-ahead log, and periodic snapshots; every commit publishes an
//!   immutable [`service::StateView`] that sessions pin for
//!   snapshot-isolated reads;
//! * [`wal`] — the log of committed records (rule loads and
//!   [`EdbDelta`] batches) in checksummed frames, fsynced before apply,
//!   truncated over records the engine refused;
//! * [`snapshot`] — atomic snapshot images (tmp + rename + dir fsync)
//!   that bound WAL replay;
//! * [`server`] — the wire layer: line-delimited JSON over TCP or Unix
//!   sockets, one thread per connection, per-session staged batches;
//! * [`client`] — a blocking client for the same protocol (used by
//!   `ldl-shell --connect` and the benches);
//! * [`replicate`] — WAL-shipping replication: the replica-side runner
//!   (bootstrap, catch-up, reconnect with backoff) and the feed's wire
//!   encoding; primaries group-commit concurrent writers into shared
//!   fsyncs and serve committed frames to replicas;
//! * [`json`] — the minimal JSON value keeping the workspace hermetic.
//!
//! See DESIGN.md §14 for the wire protocol and the durability /
//! isolation contracts, and §15 for replication.

pub mod client;
pub mod json;
pub mod replicate;
pub mod server;
pub mod service;
pub mod snapshot;
pub mod wal;

pub use client::Client;
pub use json::Json;
pub use server::{Listener, Server};
pub use service::{ReplicationStatus, Service, ServiceOptions, StateView};
pub use wal::{Wal, WalRecord};

// Re-exported so binaries depending on this crate alone can stage
// batches and configure the engine.
pub use ldl_eval::{EdbDelta, Engine, FixpointConfig};
