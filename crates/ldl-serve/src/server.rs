//! The wire layer: line-delimited JSON over TCP or Unix-domain
//! sockets, one thread per connection.
//!
//! Every request is one JSON object on one line with an `"op"` member;
//! every response is one JSON object with `"ok": true/false`. A
//! session holds two pieces of state: a **pinned** [`StateView`]
//! (snapshot isolation — reads never see later commits until the
//! session `refresh`es or commits itself) and a **staged**
//! [`EdbDelta`] batch built by `insert`/`retract` and applied by
//! `commit`. A failed commit keeps the staged batch intact.
//!
//! | op        | request members        | response members                        |
//! |-----------|------------------------|-----------------------------------------|
//! | `hello`   |                        | `server`, `version` (pinned)            |
//! | `load`    | `text` (rules source)  | `version`, `diagnostics` (analyzer warnings; on rejection: errors) |
//! | `insert`  | `facts` (ground facts) | `staged`                                |
//! | `retract` | `facts`                | `staged`                                |
//! | `pending` |                        | `staged`, `preds`                       |
//! | `abort`   |                        | `staged` (0)                            |
//! | `commit`  |                        | `version`, `base_inserted`, ...         |
//! | `query`   | `goal` (e.g. `p(1,X)?`)| `version`, `count`, `rows` (strings)    |
//! | `refresh` |                        | `version`                               |
//! | `digest`  |                        | `version`, `digest` (hex, pinned view)  |
//! | `stats`   |                        | `version`, `preds`, `tuples`, `role`, `epoch`, `commits`, `fsyncs`, replication fields on replicas |
//! | `snapshot`|                        | (admin-gated)                           |
//! | `ping`    |                        |                                         |
//! | `shutdown`|                        | (admin-gated; server exits accept loop) |
//! | `wal_since`| `epoch` (hex), `since`, `max` | feed reply: `status` = `records` / `up_to_date` / `bootstrap` (see [`crate::replicate`]) |
//! | `subscribe`| `epoch`, `since`, `max`, `wait_ms` | like `wal_since`, but long-polls up to `wait_ms` for a commit past `since` |
//!
//! `snapshot` and `shutdown` are **admin ops**: they are refused unless
//! the listener allows remote administration — on by default for Unix
//! sockets (local, filesystem-permissioned), off by default for TCP
//! (`--allow-remote-admin` opts in). This keeps a replica's outbound
//! connection — or any remote read session — from shutting down the
//! primary.

use crate::json::{self, Json};
use crate::replicate;
use crate::service::Service;
use ldl_analysis::{AnalysisOptions, Diagnostic};
use ldl_core::parser::{parse_program, parse_query};
use ldl_core::{Span, Term};
use ldl_eval::EdbDelta;
use ldl_storage::Tuple;
use std::fs;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;

/// A bidirectional byte stream the server or client can split into a
/// buffered reader plus a writer.
pub trait Conn: Read + Write + Send {
    /// An independently owned handle to the same stream.
    fn try_clone_conn(&self) -> io::Result<Box<dyn Conn>>;
}

impl Conn for TcpStream {
    fn try_clone_conn(&self) -> io::Result<Box<dyn Conn>> {
        Ok(Box::new(self.try_clone()?))
    }
}

#[cfg(unix)]
impl Conn for UnixStream {
    fn try_clone_conn(&self) -> io::Result<Box<dyn Conn>> {
        Ok(Box::new(self.try_clone()?))
    }
}

/// Where a target string routes: `host:port` when it contains a colon
/// and no path separator, otherwise a Unix socket path.
pub fn is_tcp_target(target: &str) -> bool {
    target.contains(':') && !target.contains('/')
}

/// A bound listening socket.
pub enum Listener {
    /// A TCP listener.
    Tcp(TcpListener),
    /// A Unix-domain listener plus its socket path (unlinked on drop).
    #[cfg(unix)]
    Unix(UnixListener, PathBuf),
}

impl Listener {
    /// Binds `target`: `host:port` (TCP) or a filesystem path (Unix
    /// socket; a stale socket file is removed first).
    pub fn bind(target: &str) -> io::Result<Listener> {
        if is_tcp_target(target) {
            return Ok(Listener::Tcp(TcpListener::bind(target)?));
        }
        #[cfg(unix)]
        {
            let path = PathBuf::from(target);
            if path.exists() {
                let _ = fs::remove_file(&path);
            }
            Ok(Listener::Unix(UnixListener::bind(&path)?, path))
        }
        #[cfg(not(unix))]
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "unix sockets are not available on this platform",
        ))
    }

    /// Human-readable description of the bound address.
    pub fn describe(&self) -> String {
        match self {
            Listener::Tcp(l) => l
                .local_addr()
                .map(|a| format!("tcp://{a}"))
                .unwrap_or_else(|_| "tcp://?".into()),
            #[cfg(unix)]
            Listener::Unix(_, path) => format!("unix://{}", path.display()),
        }
    }

    fn accept(&self) -> io::Result<Box<dyn Conn>> {
        match self {
            Listener::Tcp(l) => {
                let (s, _) = l.accept()?;
                // One-line request/response traffic: Nagle + delayed
                // ACK would add ~40ms per round trip.
                s.set_nodelay(true)?;
                Ok(Box::new(s))
            }
            #[cfg(unix)]
            Listener::Unix(l, _) => {
                let (s, _) = l.accept()?;
                Ok(Box::new(s))
            }
        }
    }
}

impl Drop for Listener {
    fn drop(&mut self) {
        #[cfg(unix)]
        if let Listener::Unix(_, path) = self {
            let _ = fs::remove_file(path);
        }
    }
}

/// The accept loop: owns a [`Service`] handle and a bound listener.
pub struct Server {
    service: Arc<Service>,
    listener: Listener,
    allow_admin: bool,
}

impl Server {
    /// Couples a service with a bound listener. Remote admin
    /// (`shutdown` / `snapshot`) defaults by listener type: allowed on
    /// Unix sockets, refused on TCP.
    pub fn new(service: Arc<Service>, listener: Listener) -> Server {
        let allow_admin = match &listener {
            Listener::Tcp(_) => false,
            #[cfg(unix)]
            Listener::Unix(..) => true,
        };
        Server {
            service,
            listener,
            allow_admin,
        }
    }

    /// Overrides the admin-op default (the `--allow-remote-admin`
    /// flag).
    pub fn with_admin(mut self, allow: bool) -> Server {
        self.allow_admin = allow;
        self
    }

    /// The bound address, for logging.
    pub fn describe(&self) -> String {
        self.listener.describe()
    }

    /// Runs until a session sends `shutdown`. Each connection gets its
    /// own thread; commits serialize inside the service.
    pub fn run(self) -> io::Result<()> {
        let stop = Arc::new(AtomicBool::new(false));
        loop {
            let conn = self.listener.accept();
            if stop.load(Ordering::SeqCst) {
                return Ok(());
            }
            match conn {
                Ok(conn) => {
                    let service = self.service.clone();
                    let stop = stop.clone();
                    let allow_admin = self.allow_admin;
                    let poke = match &self.listener {
                        Listener::Tcp(l) => Poke::Tcp(l.local_addr().ok()),
                        #[cfg(unix)]
                        Listener::Unix(_, path) => Poke::Unix(path.clone()),
                    };
                    thread::spawn(move || {
                        let _ = handle_conn(service, conn, stop, poke, allow_admin);
                    });
                }
                Err(e) => return Err(e),
            }
        }
    }
}

enum Poke {
    Tcp(Option<std::net::SocketAddr>),
    #[cfg(unix)]
    Unix(PathBuf),
}

impl Poke {
    fn poke(&self) {
        match self {
            Poke::Tcp(Some(addr)) => {
                let _ = TcpStream::connect(addr);
            }
            Poke::Tcp(None) => {}
            #[cfg(unix)]
            Poke::Unix(path) => {
                let _ = UnixStream::connect(path);
            }
        }
    }
}

fn ok(pairs: Vec<(&str, Json)>) -> Json {
    let mut all = vec![("ok", Json::Bool(true))];
    all.extend(pairs);
    Json::obj(all)
}

fn err(msg: impl Into<String>) -> Json {
    Json::obj(vec![
        ("ok", Json::Bool(false)),
        ("error", Json::Str(msg.into())),
    ])
}

/// One analyzer diagnostic as a wire JSON object (same member names
/// as `Diagnostic::to_json`, so `ldl-shell --check --json` output and
/// wire responses agree).
fn diag_json(d: &Diagnostic) -> Json {
    Json::obj(vec![
        ("code", Json::str(d.code)),
        ("severity", Json::str(d.severity.to_string())),
        ("message", Json::str(d.message.clone())),
        ("line", Json::int(d.span.line as i64)),
        ("col", Json::int(d.span.col as i64)),
        (
            "notes",
            Json::Arr(d.notes.iter().map(|n| Json::str(n.clone())).collect()),
        ),
    ])
}

/// Analyzes a `load` text against the pinned view's base relations.
/// A parse failure becomes a single `LDL000` diagnostic, mirroring
/// `ldl-shell --check`.
fn analyze_load(text: &str, db: &ldl_storage::Database) -> ldl_analysis::Report {
    match parse_program(text) {
        Ok(program) => ldl_analysis::analyze_program_db(&program, db, &AnalysisOptions::default()),
        Err(e) => {
            let span = match &e {
                ldl_core::LdlError::Parse { line, col, .. } => {
                    Span::point(*line as u32, *col as u32)
                }
                _ => Span::NONE,
            };
            let mut r = ldl_analysis::Report::new();
            r.push(Diagnostic::error(
                ldl_analysis::PARSE_ERROR_CODE,
                span,
                e.to_string(),
            ));
            r.finish()
        }
    }
}

fn admin_refused(op: &str) -> String {
    format!(
        "admin op '{op}' is not allowed on this listener \
         (start the server with --allow-remote-admin to enable it)"
    )
}

/// Parses a facts-only source text into `(pred, tuple)` pairs.
fn parse_facts(text: &str) -> Result<Vec<(ldl_core::Pred, Tuple)>, String> {
    let program = parse_program(text).map_err(|e| e.to_string())?;
    if !program.rules.is_empty() {
        return Err("only ground facts may be staged (rules go through 'load')".into());
    }
    let mut out = Vec::with_capacity(program.facts.len());
    for a in &program.facts {
        if !a.args.iter().all(Term::is_ground) {
            return Err(format!("fact {a} is not ground"));
        }
        out.push((a.pred, Tuple::new(a.args.clone())));
    }
    if out.is_empty() {
        return Err("no facts in input".into());
    }
    Ok(out)
}

fn handle_conn(
    service: Arc<Service>,
    conn: Box<dyn Conn>,
    stop: Arc<AtomicBool>,
    poke: Poke,
    allow_admin: bool,
) -> io::Result<()> {
    let reader = BufReader::new(conn.try_clone_conn()?);
    let mut writer = conn;
    let mut pinned = service.current();
    let mut pending = EdbDelta::new();

    for line in reader.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let request = match json::parse(&line) {
            Ok(v) => v,
            Err(e) => {
                respond(&mut writer, &err(format!("bad request: {e}")))?;
                continue;
            }
        };
        let op = request.get("op").and_then(Json::as_str).unwrap_or("");
        let mut shutdown = false;
        let response = match op {
            "hello" => ok(vec![
                ("server", Json::str("ldl-serve")),
                ("version", Json::int(pinned.version as i64)),
                (
                    "role",
                    Json::str(if service.primary_target().is_some() {
                        "replica"
                    } else {
                        "primary"
                    }),
                ),
            ]),
            "ping" => ok(vec![]),
            "load" => match request.get("text").and_then(Json::as_str) {
                None => err("'load' needs a 'text' member"),
                Some(text) => {
                    // Static analysis against the pinned view's base
                    // relations, before the rules reach the service:
                    // errors reject the load with structured
                    // diagnostics; warnings ride along on success.
                    let report = analyze_load(text, &pinned.db);
                    let diags: Vec<Json> = report.diagnostics.iter().map(diag_json).collect();
                    if report.has_errors() {
                        let first = report.errors().next().expect("has_errors");
                        Json::obj(vec![
                            ("ok", Json::Bool(false)),
                            (
                                "error",
                                Json::str(format!("{}: {}", first.code, first.message)),
                            ),
                            ("diagnostics", Json::Arr(diags)),
                        ])
                    } else {
                        match service.load_rules(text) {
                            Ok(view) => {
                                pinned = view;
                                let mut pairs = vec![("version", Json::int(pinned.version as i64))];
                                if !diags.is_empty() {
                                    pairs.push(("diagnostics", Json::Arr(diags)));
                                }
                                ok(pairs)
                            }
                            Err(e) => err(e.to_string()),
                        }
                    }
                }
            },
            "insert" | "retract" => match request.get("facts").and_then(Json::as_str) {
                None => err(format!("'{op}' needs a 'facts' member")),
                Some(text) => match parse_facts(text) {
                    Ok(facts) => {
                        for (p, t) in facts {
                            if op == "insert" {
                                pending.insert(p, t);
                            } else {
                                pending.retract(p, t);
                            }
                        }
                        ok(vec![("staged", Json::int(pending.len() as i64))])
                    }
                    Err(e) => err(e),
                },
            },
            "pending" => ok(vec![
                ("staged", Json::int(pending.len() as i64)),
                (
                    "preds",
                    Json::Arr(
                        pending
                            .preds()
                            .iter()
                            .map(|p| Json::str(p.to_string()))
                            .collect(),
                    ),
                ),
            ]),
            "abort" => {
                pending = EdbDelta::new();
                ok(vec![("staged", Json::int(0))])
            }
            "commit" => match service.commit(&pending) {
                Ok((view, report)) => {
                    pending = EdbDelta::new();
                    pinned = view;
                    ok(vec![
                        ("version", Json::int(pinned.version as i64)),
                        ("base_inserted", Json::int(report.base_inserted as i64)),
                        ("base_retracted", Json::int(report.base_retracted as i64)),
                        (
                            "derived_inserted",
                            Json::int(report.derived_inserted as i64),
                        ),
                        (
                            "derived_retracted",
                            Json::int(report.derived_retracted as i64),
                        ),
                    ])
                }
                // The staged batch survives a refused commit.
                Err(e) => err(format!("{e} (staged batch preserved)")),
            },
            "query" => match request.get("goal").and_then(Json::as_str) {
                None => err("'query' needs a 'goal' member"),
                Some(goal) => match parse_query(goal) {
                    Err(e) => err(e.to_string()),
                    Ok(query) => {
                        let answers = pinned.answers(&query);
                        ok(vec![
                            ("version", Json::int(pinned.version as i64)),
                            ("count", Json::int(answers.len() as i64)),
                            (
                                "rows",
                                Json::Arr(
                                    answers.iter().map(|t| Json::str(t.to_string())).collect(),
                                ),
                            ),
                        ])
                    }
                },
            },
            "refresh" => {
                pinned = service.current();
                ok(vec![("version", Json::int(pinned.version as i64))])
            }
            "digest" => ok(vec![
                ("version", Json::int(pinned.version as i64)),
                ("digest", Json::str(format!("{:016x}", pinned.digest()))),
            ]),
            "stats" => {
                let counters = service.counters();
                let mut pairs = vec![
                    ("version", Json::int(pinned.version as i64)),
                    ("preds", Json::int(pinned.db.preds().len() as i64)),
                    ("tuples", Json::int(pinned.total_tuples() as i64)),
                    ("epoch", Json::str(replicate::encode_epoch(service.epoch()))),
                    ("commits", Json::int(counters.commits as i64)),
                    ("fsyncs", Json::int(counters.fsyncs as i64)),
                ];
                match service.primary_target() {
                    None => pairs.push(("role", Json::str("primary"))),
                    Some(primary) => {
                        let r = service.replication_status();
                        // Lag against the freshest applied version, not
                        // the session's pin.
                        let applied = service.version();
                        pairs.extend([
                            ("role", Json::str("replica")),
                            ("primary", Json::str(primary)),
                            ("connected", Json::Bool(r.connected)),
                            ("primary_head", Json::int(r.primary_head as i64)),
                            (
                                "lag_versions",
                                Json::int(r.primary_head.saturating_sub(applied) as i64),
                            ),
                            ("behind_bytes", Json::int(r.behind_bytes as i64)),
                            ("reconnects", Json::int(r.reconnects as i64)),
                            ("bootstraps", Json::int(r.bootstraps as i64)),
                            (
                                "last_error",
                                r.last_error.map(Json::str).unwrap_or(Json::Null),
                            ),
                        ]);
                    }
                }
                ok(pairs)
            }
            "snapshot" if !allow_admin => err(admin_refused("snapshot")),
            "snapshot" => match service.snapshot_now() {
                Ok(()) => ok(vec![]),
                Err(e) => err(e.to_string()),
            },
            "shutdown" if !allow_admin => err(admin_refused("shutdown")),
            "shutdown" => {
                shutdown = true;
                ok(vec![])
            }
            "wal_since" | "subscribe" => {
                let epoch = replicate::decode_epoch(request.get("epoch"));
                let since = request
                    .get("since")
                    .and_then(Json::as_int)
                    .unwrap_or(0)
                    .max(0) as u64;
                let max = request
                    .get("max")
                    .and_then(Json::as_int)
                    .unwrap_or(64)
                    .clamp(1, 4096) as usize;
                if op == "subscribe" {
                    // Long-poll: hold the request open until a commit
                    // moves past the follower's position (or time out
                    // and answer with whatever is current).
                    let wait_ms = request
                        .get("wait_ms")
                        .and_then(Json::as_int)
                        .unwrap_or(1000)
                        .clamp(0, 30_000) as u64;
                    service.wait_for_version(since, std::time::Duration::from_millis(wait_ms));
                }
                ok(replicate::feed_to_json(
                    service.epoch(),
                    &service.feed_since(epoch, since, max),
                ))
            }
            other => err(format!("unknown op '{other}'")),
        };
        respond(&mut writer, &response)?;
        if shutdown {
            stop.store(true, Ordering::SeqCst);
            poke.poke();
            break;
        }
    }
    Ok(())
}

fn respond(w: &mut Box<dyn Conn>, v: &Json) -> io::Result<()> {
    writeln!(w, "{v}")?;
    w.flush()
}
