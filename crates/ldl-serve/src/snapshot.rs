//! Snapshot files: a durable image of the service state (sequence
//! number, program text, EDB) that bounds WAL replay on restart.
//!
//! File layout: an 8-byte magic (`LDLSNAP1`) followed by one
//! checksummed frame whose payload is `[seq u64][program text
//! string][database]`. Writes are atomic: the image goes to a `.tmp`
//! sibling, is fsynced, renamed over the real name, and the directory
//! is fsynced — a crash at any point leaves either the previous
//! complete snapshot or the new complete snapshot, never a mix. The
//! WAL is only reset *after* the rename is durable.

use ldl_core::{LdlError, Result};
use ldl_storage::codec::{self, Decoder, Frame};
use ldl_storage::Database;
use std::fs::{self, File, OpenOptions};
use std::io;
use std::path::{Path, PathBuf};

const MAGIC: &[u8; 8] = b"LDLSNAP1";
const META_MAGIC: &[u8; 8] = b"LDLMETA1";

/// The snapshot file name inside a service data directory.
pub const SNAPSHOT_FILE: &str = "snapshot.bin";

/// The meta file name inside a service data directory: one checksummed
/// frame holding the history **epoch** — a random identifier minted
/// when a primary creates a fresh data directory and copied to every
/// replica that bootstraps from it. Two directories with the same epoch
/// hold prefixes of the same commit history, which is what makes a
/// `(epoch, version)` replication position meaningful across restarts.
pub const META_FILE: &str = "meta.bin";

fn snap_io(e: io::Error) -> LdlError {
    LdlError::Eval(format!("snapshot: i/o error: {e}"))
}

/// A decoded snapshot image.
#[derive(Debug)]
pub struct Snapshot {
    /// Sequence number of the last WAL record folded into this image.
    pub seq: u64,
    /// The rule base at snapshot time, as source text.
    pub program_text: String,
    /// The EDB at snapshot time.
    pub db: Database,
}

/// Path of the snapshot inside `dir`.
pub fn snapshot_path(dir: &Path) -> PathBuf {
    dir.join(SNAPSHOT_FILE)
}

/// Atomically writes a snapshot image into `dir`.
pub fn write_snapshot(dir: &Path, seq: u64, program_text: &str, db: &Database) -> Result<()> {
    let mut payload = Vec::new();
    codec::put_u64(&mut payload, seq);
    codec::put_str(&mut payload, program_text);
    payload.extend_from_slice(&codec::encode_database(db));

    let tmp = dir.join(format!("{SNAPSHOT_FILE}.tmp"));
    let mut f = OpenOptions::new()
        .write(true)
        .create(true)
        .truncate(true)
        .open(&tmp)
        .map_err(snap_io)?;
    io::Write::write_all(&mut f, MAGIC).map_err(snap_io)?;
    codec::write_frame(&mut f, &payload).map_err(snap_io)?;
    f.sync_all().map_err(snap_io)?;
    drop(f);
    fs::rename(&tmp, snapshot_path(dir)).map_err(snap_io)?;
    // Make the rename itself durable.
    if let Ok(d) = File::open(dir) {
        let _ = d.sync_all();
    }
    Ok(())
}

/// Loads the snapshot from `dir`, if one exists. A missing file is
/// `Ok(None)` (fresh service); a present-but-corrupt file is an error —
/// the WAL was truncated against this image, so silently ignoring it
/// would lose acknowledged commits.
pub fn load_snapshot(dir: &Path) -> Result<Option<Snapshot>> {
    let path = snapshot_path(dir);
    let mut f = match File::open(&path) {
        Ok(f) => f,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(snap_io(e)),
    };
    let mut magic = [0u8; 8];
    io::Read::read_exact(&mut f, &mut magic)
        .map_err(|_| LdlError::Eval(format!("snapshot: {} is truncated", path.display())))?;
    if &magic != MAGIC {
        return Err(LdlError::Eval(format!(
            "snapshot: {} is not a snapshot file (bad magic)",
            path.display()
        )));
    }
    let payload = match codec::read_frame(&mut f).map_err(snap_io)? {
        Frame::Payload(p) => p,
        _ => {
            return Err(LdlError::Eval(format!(
                "snapshot: {} is torn or corrupt",
                path.display()
            )))
        }
    };
    let mut d = Decoder::new(&payload);
    let seq = d.u64()?;
    let program_text = d.str()?;
    let db = codec::get_database(&mut d)?;
    if !d.is_at_end() {
        return Err(LdlError::Eval(
            "snapshot: trailing bytes after image".into(),
        ));
    }
    Ok(Some(Snapshot {
        seq,
        program_text,
        db,
    }))
}

/// Atomically writes the epoch meta file into `dir` (tmp + rename +
/// dir fsync, like snapshots).
pub fn write_meta(dir: &Path, epoch: u64) -> Result<()> {
    let mut payload = Vec::new();
    codec::put_u64(&mut payload, epoch);
    let tmp = dir.join(format!("{META_FILE}.tmp"));
    let mut f = OpenOptions::new()
        .write(true)
        .create(true)
        .truncate(true)
        .open(&tmp)
        .map_err(snap_io)?;
    io::Write::write_all(&mut f, META_MAGIC).map_err(snap_io)?;
    codec::write_frame(&mut f, &payload).map_err(snap_io)?;
    f.sync_all().map_err(snap_io)?;
    drop(f);
    fs::rename(&tmp, dir.join(META_FILE)).map_err(snap_io)?;
    if let Ok(d) = File::open(dir) {
        let _ = d.sync_all();
    }
    Ok(())
}

/// Reads the epoch from `dir`'s meta file; `Ok(None)` when the file is
/// missing (fresh directory). A torn meta (crash mid-first-write) also
/// reads as `None` — the epoch is re-minted, which is safe because no
/// commit could have been acknowledged before the meta existed.
pub fn read_meta(dir: &Path) -> Result<Option<u64>> {
    let path = dir.join(META_FILE);
    let mut f = match File::open(&path) {
        Ok(f) => f,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(snap_io(e)),
    };
    let mut magic = [0u8; 8];
    if io::Read::read_exact(&mut f, &mut magic).is_err() || &magic != META_MAGIC {
        return Ok(None);
    }
    match codec::read_frame(&mut f).map_err(snap_io)? {
        Frame::Payload(p) => {
            let mut d = Decoder::new(&p);
            Ok(Some(d.u64()?))
        }
        _ => Ok(None),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldl_core::parser::parse_program;

    fn tmpdir(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("ldl-snap-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn roundtrip_and_missing() {
        let dir = tmpdir("roundtrip");
        assert!(load_snapshot(&dir).unwrap().is_none());

        let text = "tc(X, Y) <- e(X, Y).\ntc(X, Y) <- e(X, Z), tc(Z, Y).";
        let db = Database::from_program(&parse_program("e(1, 2). e(2, 3).").unwrap());
        write_snapshot(&dir, 17, text, &db).unwrap();

        let snap = load_snapshot(&dir).unwrap().unwrap();
        assert_eq!(snap.seq, 17);
        assert_eq!(snap.program_text, text);
        assert_eq!(
            codec::encode_database(&snap.db),
            codec::encode_database(&db)
        );
        // No .tmp residue after a clean write.
        assert!(!dir.join(format!("{SNAPSHOT_FILE}.tmp")).exists());
    }

    #[test]
    fn meta_roundtrip_missing_and_torn() {
        let dir = tmpdir("meta");
        assert_eq!(read_meta(&dir).unwrap(), None);
        write_meta(&dir, 0xDEAD_BEEF_CAFE_F00D).unwrap();
        assert_eq!(read_meta(&dir).unwrap(), Some(0xDEAD_BEEF_CAFE_F00D));
        // A torn meta reads as None (re-mint), never panics.
        let path = dir.join(META_FILE);
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();
        assert_eq!(read_meta(&dir).unwrap(), None);
    }

    #[test]
    fn corrupt_snapshot_is_an_error_not_an_empty_db() {
        let dir = tmpdir("corrupt");
        let db = Database::from_program(&parse_program("e(1, 2).").unwrap());
        write_snapshot(&dir, 3, "", &db).unwrap();
        let path = snapshot_path(&dir);
        let mut bytes = fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x10;
        fs::write(&path, bytes).unwrap();
        assert!(load_snapshot(&dir).is_err());
    }
}
