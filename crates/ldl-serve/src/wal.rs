//! The write-ahead log: committed rule loads and EDB deltas, one
//! checksummed frame per record, fsynced before the engine applies
//! anything.
//!
//! File layout: an 8-byte magic (`LDLWAL01`), then frames (see
//! `ldl_storage::codec`). Each frame's payload is
//! `[seq u64][kind u8][body]` — kind `0` is a rule load carrying the
//! program text, kind `1` an [`EdbDelta`] carrying per-predicate
//! insert and retract tuple sets.
//!
//! A torn tail (partial frame or failed checksum — what a crash
//! mid-append leaves behind) is truncated on open and replay stops
//! there: the corresponding commit was never acknowledged. Likewise,
//! [`Wal::truncate_last`] rolls the file back over the most recent
//! record when its apply failed after the append was already durable.

use ldl_core::{LdlError, Pred};
use ldl_eval::EdbDelta;
use ldl_storage::codec::{self, Decoder, Frame};
use ldl_storage::Tuple;
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

const MAGIC: &[u8; 8] = b"LDLWAL01";
const KIND_RULES: u8 = 0;
const KIND_DELTA: u8 = 1;

/// One durable record.
#[derive(Clone, Debug, PartialEq)]
pub enum WalRecord {
    /// A program (rule base) load, stored as source text; replay
    /// re-parses it, which is deterministic.
    Rules(String),
    /// A committed EDB update batch.
    Delta(EdbDelta),
}

/// Encodes one record into the frame payload shipped over the wire by
/// replication and written to the log by [`Wal::append`]:
/// `[seq u64][kind u8][body]`.
pub fn encode_record(seq: u64, rec: &WalRecord) -> Vec<u8> {
    let mut buf = Vec::new();
    codec::put_u64(&mut buf, seq);
    match rec {
        WalRecord::Rules(text) => {
            buf.push(KIND_RULES);
            codec::put_str(&mut buf, text);
        }
        WalRecord::Delta(delta) => {
            buf.push(KIND_DELTA);
            let inserts: Vec<(Pred, &[Tuple])> = delta.staged_inserts().collect();
            let retracts: Vec<(Pred, &[Tuple])> = delta.staged_retracts().collect();
            for group in [&inserts, &retracts] {
                codec::put_u32(&mut buf, group.len() as u32);
                for (p, ts) in group {
                    codec::put_str(&mut buf, p.name.as_str());
                    codec::put_u32(&mut buf, p.arity as u32);
                    codec::put_u32(&mut buf, ts.len() as u32);
                    for t in *ts {
                        codec::put_tuple(&mut buf, t);
                    }
                }
            }
        }
    }
    buf
}

/// Decodes one frame payload produced by [`encode_record`]. Every read
/// is bounds-checked; corrupt payloads surface as errors, never panics.
pub fn decode_record(payload: &[u8]) -> Result<(u64, WalRecord), LdlError> {
    let mut d = Decoder::new(payload);
    let seq = d.u64()?;
    let kind = d.u8()?;
    let rec = match kind {
        KIND_RULES => WalRecord::Rules(d.str()?),
        KIND_DELTA => {
            let mut delta = EdbDelta::new();
            for side in 0..2u8 {
                let n = d.u32()? as usize;
                for _ in 0..n {
                    let name = d.str()?;
                    let arity = d.u32()? as usize;
                    let count = d.u32()? as usize;
                    let pred = Pred::new(&name, arity);
                    for _ in 0..count {
                        let t = codec::get_tuple(&mut d)?;
                        if side == 0 {
                            delta.insert(pred, t);
                        } else {
                            delta.retract(pred, t);
                        }
                    }
                }
            }
            WalRecord::Delta(delta)
        }
        other => {
            return Err(LdlError::Eval(format!("wal: unknown record kind {other}")));
        }
    };
    if !d.is_at_end() {
        return Err(LdlError::Eval("wal: trailing bytes in record".into()));
    }
    Ok((seq, rec))
}

/// An open write-ahead log positioned for appends.
pub struct Wal {
    file: File,
    path: PathBuf,
    /// Byte offset where the most recent record's frame begins (for
    /// [`Wal::truncate_last`]).
    last_record_start: Option<u64>,
    /// Current file length.
    len: u64,
}

impl Wal {
    /// Opens (or creates) the log at `path`, scans every complete
    /// frame, truncates any torn tail, and returns the decoded records
    /// in order. A record that is framed correctly (checksum passes)
    /// but fails to decode is corruption beyond what a crash can
    /// produce and is reported as an error rather than dropped.
    pub fn open(path: &Path) -> Result<(Wal, Vec<(u64, WalRecord)>), LdlError> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)
            .map_err(wal_io)?;
        let file_len = file.metadata().map_err(wal_io)?.len();

        // Fresh or torn-before-magic files are (re)initialized.
        let mut magic = [0u8; 8];
        let got = read_at_most(&mut file, &mut magic).map_err(wal_io)?;
        if got < 8 {
            file.set_len(0).map_err(wal_io)?;
            file.seek(SeekFrom::Start(0)).map_err(wal_io)?;
            file.write_all(MAGIC).map_err(wal_io)?;
            file.sync_all().map_err(wal_io)?;
            return Ok((
                Wal {
                    file,
                    path: path.to_path_buf(),
                    last_record_start: None,
                    len: 8,
                },
                Vec::new(),
            ));
        }
        if &magic != MAGIC {
            return Err(LdlError::Eval(format!(
                "wal: {} is not a WAL file (bad magic)",
                path.display()
            )));
        }

        let mut records = Vec::new();
        let mut offset = 8u64;
        let mut last_start = None;
        loop {
            match codec::read_frame(&mut file).map_err(wal_io)? {
                Frame::Eof => break,
                Frame::Torn => {
                    // A crash mid-append: the commit was never
                    // acknowledged. Truncate and stop.
                    file.set_len(offset).map_err(wal_io)?;
                    file.sync_all().map_err(wal_io)?;
                    break;
                }
                Frame::Payload(payload) => {
                    let (seq, rec) = decode_record(&payload)?;
                    last_start = Some(offset);
                    offset += 8 + payload.len() as u64;
                    records.push((seq, rec));
                }
            }
        }
        let len = offset.min(file_len.max(8));
        file.seek(SeekFrom::Start(len)).map_err(wal_io)?;
        Ok((
            Wal {
                file,
                path: path.to_path_buf(),
                last_record_start: last_start,
                len,
            },
            records,
        ))
    }

    /// Appends one record and syncs it to disk. Returns only after the
    /// frame is durable — callers apply the record to the engine
    /// strictly afterwards.
    pub fn append(&mut self, seq: u64, rec: &WalRecord) -> Result<(), LdlError> {
        self.append_nosync(seq, rec)?;
        self.sync()
    }

    /// Appends one record **without** syncing and returns its encoded
    /// payload (the bytes replication ships). The caller owns
    /// durability: either [`Wal::sync`] on this handle or an `fsync` on
    /// a [`Wal::sync_handle`] — the group-commit batcher coalesces many
    /// appends into one such sync.
    pub fn append_nosync(&mut self, seq: u64, rec: &WalRecord) -> Result<Vec<u8>, LdlError> {
        let payload = encode_record(seq, rec);
        self.append_payload_nosync(&payload)?;
        Ok(payload)
    }

    /// Appends an already-encoded frame payload without syncing — the
    /// replica apply path writes the exact bytes the primary shipped.
    pub fn append_payload_nosync(&mut self, payload: &[u8]) -> Result<(), LdlError> {
        let start = self.len;
        codec::write_frame(&mut self.file, payload).map_err(wal_io)?;
        self.last_record_start = Some(start);
        self.len = start + 8 + payload.len() as u64;
        Ok(())
    }

    /// Syncs every appended frame to disk.
    pub fn sync(&self) -> Result<(), LdlError> {
        self.file.sync_all().map_err(wal_io)
    }

    /// An independently owned handle to the log file for out-of-lock
    /// fsyncs (same inode; `sync_all` on it covers every append,
    /// including after [`Wal::reset`], which truncates in place).
    pub fn sync_handle(&self) -> Result<File, LdlError> {
        self.file.try_clone().map_err(wal_io)
    }

    /// Current file length in bytes (header + complete frames).
    pub fn len_bytes(&self) -> u64 {
        self.len
    }

    /// Rolls back the most recent append (used when the engine refused
    /// the already-durable record): truncates the file over it, so a
    /// recovery never replays a record the live engine rejected.
    pub fn truncate_last(&mut self) -> Result<(), LdlError> {
        let Some(start) = self.last_record_start.take() else {
            return Err(LdlError::Eval("wal: no record to truncate".into()));
        };
        self.file.set_len(start).map_err(wal_io)?;
        self.file.sync_all().map_err(wal_io)?;
        self.file.seek(SeekFrom::Start(start)).map_err(wal_io)?;
        self.len = start;
        Ok(())
    }

    /// Empties the log (after its contents were folded into a durable
    /// snapshot).
    pub fn reset(&mut self) -> Result<(), LdlError> {
        self.file.set_len(8).map_err(wal_io)?;
        self.file.seek(SeekFrom::Start(8)).map_err(wal_io)?;
        self.file.sync_all().map_err(wal_io)?;
        self.last_record_start = None;
        self.len = 8;
        Ok(())
    }

    /// The log's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

fn wal_io(e: io::Error) -> LdlError {
    LdlError::Eval(format!("wal: i/o error: {e}"))
}

fn read_at_most(r: &mut impl Read, buf: &mut [u8]) -> io::Result<usize> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => break,
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    Ok(filled)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldl_core::Pred;
    use ldl_storage::Tuple;

    fn tmpdir(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("ldl-wal-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn sample_delta() -> EdbDelta {
        let mut d = EdbDelta::new();
        d.insert(Pred::new("e", 2), Tuple::ints(&[1, 2]));
        d.insert(Pred::new("e", 2), Tuple::ints(&[2, 3]));
        d.retract(Pred::new("g", 1), Tuple::ints(&[7]));
        d
    }

    #[test]
    fn append_and_replay_roundtrip() {
        let dir = tmpdir("roundtrip");
        let path = dir.join("wal.bin");
        {
            let (mut wal, recs) = Wal::open(&path).unwrap();
            assert!(recs.is_empty());
            wal.append(1, &WalRecord::Rules("p(X) <- e(X, _).".into()))
                .unwrap();
            wal.append(2, &WalRecord::Delta(sample_delta())).unwrap();
        }
        let (_, recs) = Wal::open(&path).unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0], (1, WalRecord::Rules("p(X) <- e(X, _).".into())));
        match &recs[1].1 {
            WalRecord::Delta(d) => assert_eq!(d.len(), 3),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn torn_tail_is_truncated_and_replay_stops() {
        let dir = tmpdir("torn");
        let path = dir.join("wal.bin");
        {
            let (mut wal, _) = Wal::open(&path).unwrap();
            wal.append(1, &WalRecord::Delta(sample_delta())).unwrap();
            wal.append(2, &WalRecord::Delta(sample_delta())).unwrap();
        }
        let full = std::fs::metadata(&path).unwrap().len();
        // Tear the second record mid-frame, as a crash during append
        // would.
        let f = OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(full - 5).unwrap();
        drop(f);

        let (mut wal, recs) = Wal::open(&path).unwrap();
        assert_eq!(recs.len(), 1, "torn record must not replay");
        // The file is truncated at the tear; appending continues
        // cleanly with a new record.
        wal.append(2, &WalRecord::Rules("q(X) <- e(X, _).".into()))
            .unwrap();
        drop(wal);
        let (_, recs) = Wal::open(&path).unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[1].0, 2);
    }

    #[test]
    fn truncate_last_rolls_back_failed_apply() {
        let dir = tmpdir("rollback");
        let path = dir.join("wal.bin");
        let (mut wal, _) = Wal::open(&path).unwrap();
        wal.append(1, &WalRecord::Delta(sample_delta())).unwrap();
        wal.append(2, &WalRecord::Delta(sample_delta())).unwrap();
        wal.truncate_last().unwrap();
        wal.append(2, &WalRecord::Rules("r(X) <- e(X, _).".into()))
            .unwrap();
        drop(wal);
        let (_, recs) = Wal::open(&path).unwrap();
        assert_eq!(recs.len(), 2);
        assert!(matches!(recs[1].1, WalRecord::Rules(_)));
    }

    #[test]
    fn corrupted_wal_bytes_never_panic() {
        // Flip one bit at every byte position, and truncate at every
        // length: `Wal::open` must come back `Ok` (dropping records from
        // the damage onward — CRC-32 catches every single-bit flip) or a
        // clean `Err` (damaged magic), never panic.
        let dir = tmpdir("fuzz");
        let path = dir.join("wal.bin");
        {
            let (mut wal, _) = Wal::open(&path).unwrap();
            wal.append(1, &WalRecord::Rules("p(X) <- e(X, _).".into()))
                .unwrap();
            wal.append(2, &WalRecord::Delta(sample_delta())).unwrap();
        }
        let pristine = std::fs::read(&path).unwrap();
        let scratch = dir.join("scratch.bin");
        for pos in 0..pristine.len() {
            let mut bytes = pristine.clone();
            bytes[pos] ^= 1 << (pos % 8);
            std::fs::write(&scratch, &bytes).unwrap();
            if let Ok((_, recs)) = Wal::open(&scratch) {
                assert!(recs.len() <= 2, "flip at {pos} invented records");
            }
        }
        for cut in 0..pristine.len() {
            std::fs::write(&scratch, &pristine[..cut]).unwrap();
            let (_, recs) = Wal::open(&scratch).expect("truncation is always recoverable");
            assert!(recs.len() <= 2, "cut at {cut} invented records");
        }
    }

    #[test]
    fn reset_empties_the_log() {
        let dir = tmpdir("reset");
        let path = dir.join("wal.bin");
        let (mut wal, _) = Wal::open(&path).unwrap();
        wal.append(1, &WalRecord::Delta(sample_delta())).unwrap();
        wal.reset().unwrap();
        drop(wal);
        let (_, recs) = Wal::open(&path).unwrap();
        assert!(recs.is_empty());
    }
}
