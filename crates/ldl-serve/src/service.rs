//! The transactional service: one resident [`Engine`] behind a commit
//! lock, a WAL + snapshot pair for durability, and an immutable
//! published [`StateView`] per committed version for snapshot-isolated
//! reads.
//!
//! ## Commit protocol (atomic at every layer)
//!
//! 1. validate the batch against the engine (no mutation);
//! 2. append the record to the WAL and **fsync** it;
//! 3. apply it to the engine — `Engine::apply_delta` itself rolls back
//!    to the exact pre-state on failure, and the service then truncates
//!    the WAL over the record so recovery never replays it;
//! 4. publish a fresh `Arc<StateView>`; readers pinned to older views
//!    are unaffected (the version-keyed `Arc<Index>` caches on
//!    `Relation` make held versions cheap).
//!
//! Recovery loads the latest snapshot and replays the WAL tail over it;
//! a torn trailing frame (crash mid-append) is truncated — that commit
//! was never acknowledged. Because evaluation and maintenance are
//! deterministic with a canonical-order contract, a recovered state is
//! bit-for-bit identical to the uninterrupted one.

use crate::snapshot::{self, Snapshot};
use crate::wal::{Wal, WalRecord};
use ldl_core::parser::parse_program;
use ldl_core::{LdlError, Pred, Program, Query, Result};
use ldl_eval::engine::filter_answers;
use ldl_eval::{EdbDelta, Engine, FixpointConfig, MaintenanceReport};
use std::collections::HashMap;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// An immutable image of one committed version. Sessions pin one at
/// start (or on `refresh`) and read from it without taking the commit
/// lock — snapshot isolation by construction.
#[derive(Clone, Debug)]
pub struct StateView {
    /// Monotonic commit sequence number (0 = empty service).
    pub version: u64,
    /// The rule base, as last-loaded source text.
    pub program_text: String,
    /// The parsed rule base.
    pub program: Program,
    /// Base relations at this version.
    pub db: ldl_storage::Database,
    /// Derived relations at this version (canonical order).
    pub derived: HashMap<Pred, ldl_storage::Relation>,
}

impl StateView {
    /// The relation backing `p`: derived if `p` has rules, else base.
    pub fn relation(&self, p: Pred) -> Option<&ldl_storage::Relation> {
        self.derived.get(&p).or_else(|| self.db.relation(p))
    }

    /// Query answers against this view (goal's relation filtered by the
    /// goal's ground arguments) — same semantics as `Engine::answers`.
    pub fn answers(&self, query: &Query) -> ldl_storage::Relation {
        match self.relation(query.pred()) {
            Some(rel) => filter_answers(rel, &query.goal),
            None => ldl_storage::Relation::new(query.pred().arity),
        }
    }

    /// FNV-1a digest over every relation (base and derived), predicates
    /// in sorted order, rows in stored (canonical) order. Two views
    /// with the same digest hold bit-for-bit identical data — the
    /// comparison CI uses across restarts.
    pub fn digest(&self) -> u64 {
        let mut preds: Vec<Pred> = self.db.preds();
        for p in self.derived.keys() {
            if !preds.contains(p) {
                preds.push(*p);
            }
        }
        preds.sort();
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
        };
        for p in preds {
            eat(p.name.as_str().as_bytes());
            eat(&(p.arity as u64).to_le_bytes());
            if let Some(rel) = self.relation(p) {
                for row in rel.rows() {
                    eat(row.to_string().as_bytes());
                    eat(b"\n");
                }
            }
        }
        h
    }

    /// Total stored tuples (base + derived).
    pub fn total_tuples(&self) -> usize {
        self.db.total_tuples()
            + self
                .derived
                .values()
                .map(ldl_storage::Relation::len)
                .sum::<usize>()
    }
}

struct Inner {
    engine: Engine,
    cfg: FixpointConfig,
    program_text: String,
    wal: Wal,
    dir: PathBuf,
    /// Take a snapshot (and reset the WAL) after this many committed
    /// records; `0` disables periodic snapshots.
    snapshot_every: u64,
    records_since_snapshot: u64,
    version: u64,
    current: Arc<StateView>,
}

/// The shared service handle. Clone the `Arc` per connection; commits
/// serialize on the internal lock, reads go through pinned views and
/// never block.
pub struct Service {
    inner: Mutex<Inner>,
}

impl Service {
    /// Opens (or creates) the service state in `dir`: loads the latest
    /// snapshot, replays the WAL tail over it, and publishes the
    /// recovered view. `snapshot_every` = records between snapshots
    /// (`0` = only on [`Service::snapshot_now`]).
    pub fn open(dir: &Path, cfg: &FixpointConfig, snapshot_every: u64) -> Result<Service> {
        fs::create_dir_all(dir).map_err(|e| {
            LdlError::Eval(format!("service: cannot create {}: {e}", dir.display()))
        })?;
        let (snap_seq, program_text, db) = match snapshot::load_snapshot(dir)? {
            Some(Snapshot {
                seq,
                program_text,
                db,
            }) => (seq, program_text, db),
            None => (0, String::new(), ldl_storage::Database::new()),
        };
        let program = parse_program(&program_text)
            .map_err(|e| LdlError::Eval(format!("service: snapshot program text: {e}")))?;
        let mut engine = Engine::evaluate(&program, &db, cfg)?;
        let mut program_text = program_text;

        let (mut wal, records) = Wal::open(&dir.join("wal.bin"))?;
        let mut version = snap_seq;
        let mut replayed = 0u64;
        let total = records.len();
        for (i, (seq, rec)) in records.into_iter().enumerate() {
            if seq <= snap_seq {
                // Already folded into the snapshot.
                continue;
            }
            let apply = match &rec {
                WalRecord::Rules(text) => {
                    Self::install_rules(&mut engine, &mut program_text, text, cfg)
                }
                WalRecord::Delta(delta) => engine.apply_delta(delta).map(|_| ()),
            };
            match apply {
                Ok(()) => {
                    version = seq;
                    replayed += 1;
                }
                Err(_) if i + 1 == total => {
                    // The record was durable but its apply failed — the
                    // live server truncates exactly this way; a crash
                    // between the fsync and the truncate lands here.
                    wal.truncate_last()?;
                    break;
                }
                Err(e) => {
                    return Err(LdlError::Eval(format!(
                        "service: WAL record {seq} failed to replay mid-log: {e}"
                    )));
                }
            }
        }

        let current = Arc::new(Self::view(version, &program_text, &engine));
        let mut service = Inner {
            engine,
            cfg: *cfg,
            program_text,
            wal,
            dir: dir.to_path_buf(),
            snapshot_every,
            records_since_snapshot: replayed,
            version,
            current,
        };
        if snapshot_every > 0 && service.records_since_snapshot >= snapshot_every {
            service.snapshot_now()?;
        }
        Ok(Service {
            inner: Mutex::new(service),
        })
    }

    /// Installs a new rule base over the engine's current EDB: the
    /// text's ground facts merge into the EDB, its rules replace the
    /// program. Fails (engine untouched) if the text does not parse,
    /// does not stratify, or does not evaluate.
    fn install_rules(
        engine: &mut Engine,
        program_text: &mut String,
        text: &str,
        cfg: &FixpointConfig,
    ) -> Result<()> {
        let program = parse_program(text)?;
        let mut db = engine.database().clone();
        db.load_facts(&program);
        *engine = Engine::evaluate(&program, &db, cfg)?;
        *program_text = text.to_string();
        Ok(())
    }

    fn view(version: u64, program_text: &str, engine: &Engine) -> StateView {
        StateView {
            version,
            program_text: program_text.to_string(),
            program: engine.program().clone(),
            db: engine.database().clone(),
            derived: engine.derived().clone(),
        }
    }

    /// The latest committed view.
    pub fn current(&self) -> Arc<StateView> {
        self.inner.lock().expect("service lock").current.clone()
    }

    /// Loads a rule base (replacing the program, merging its facts)
    /// transactionally: evaluated on a candidate first, WAL-logged and
    /// fsynced, then installed and published. On `Err` nothing changed.
    pub fn load_rules(&self, text: &str) -> Result<Arc<StateView>> {
        let mut inner = self.inner.lock().expect("service lock");
        // Dry-run on a candidate so the WAL never records a load the
        // engine would refuse.
        {
            let program = parse_program(text)?;
            let mut db = inner.engine.database().clone();
            db.load_facts(&program);
            Engine::evaluate(&program, &db, &inner.cfg)?;
        }
        let seq = inner.version + 1;
        inner.wal.append(seq, &WalRecord::Rules(text.to_string()))?;
        let cfg = inner.cfg;
        let Inner {
            engine,
            program_text,
            ..
        } = &mut *inner;
        Self::install_rules(engine, program_text, text, &cfg)
            .expect("validated rule load cannot fail");
        inner.version = seq;
        inner.publish();
        inner.after_commit()?;
        Ok(inner.current.clone())
    }

    /// Commits one EDB batch transactionally. On `Ok` the new view is
    /// published and durable (WAL fsynced before apply). On `Err` the
    /// engine, database, and WAL are exactly as they were — the caller
    /// keeps the staged batch.
    pub fn commit(&self, delta: &EdbDelta) -> Result<(Arc<StateView>, MaintenanceReport)> {
        let mut inner = self.inner.lock().expect("service lock");
        if delta.is_empty() {
            let view = inner.current.clone();
            return Ok((view, MaintenanceReport::default()));
        }
        inner.engine.validate_delta(delta)?;
        let seq = inner.version + 1;
        inner.wal.append(seq, &WalRecord::Delta(delta.clone()))?;
        match inner.engine.apply_delta(delta) {
            Ok(report) => {
                inner.version = seq;
                inner.publish();
                inner.after_commit()?;
                Ok((inner.current.clone(), report))
            }
            Err(e) => {
                // The engine rolled itself back; erase the record so
                // recovery agrees with the live refusal.
                inner.wal.truncate_last()?;
                Err(e)
            }
        }
    }

    /// Forces a snapshot of the current version and resets the WAL.
    pub fn snapshot_now(&self) -> Result<()> {
        self.inner.lock().expect("service lock").snapshot_now()
    }

    /// The current commit sequence number.
    pub fn version(&self) -> u64 {
        self.inner.lock().expect("service lock").version
    }
}

impl Inner {
    fn publish(&mut self) {
        self.current = Arc::new(Service::view(
            self.version,
            &self.program_text,
            &self.engine,
        ));
    }

    fn after_commit(&mut self) -> Result<()> {
        self.records_since_snapshot += 1;
        if self.snapshot_every > 0 && self.records_since_snapshot >= self.snapshot_every {
            self.snapshot_now()?;
        }
        Ok(())
    }

    fn snapshot_now(&mut self) -> Result<()> {
        snapshot::write_snapshot(
            &self.dir,
            self.version,
            &self.program_text,
            self.engine.database(),
        )?;
        // Only reset the log once the image is durably in place.
        self.wal.reset()?;
        self.records_since_snapshot = 0;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldl_core::parser::parse_query;
    use ldl_storage::Tuple;

    const RULES: &str = "tc(X, Y) <- e(X, Y).\ntc(X, Y) <- e(X, Z), tc(Z, Y).";

    fn tmpdir(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("ldl-serve-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        d
    }

    fn edge(delta: &mut EdbDelta, a: i64, b: i64) {
        delta.insert(Pred::new("e", 2), Tuple::ints(&[a, b]));
    }

    #[test]
    fn load_commit_query_and_recover() {
        let dir = tmpdir("basic");
        let cfg = FixpointConfig::serial();
        let digest_before;
        {
            let svc = Service::open(&dir, &cfg, 0).unwrap();
            svc.load_rules(RULES).unwrap();
            let mut d = EdbDelta::new();
            edge(&mut d, 1, 2);
            edge(&mut d, 2, 3);
            let (view, report) = svc.commit(&d).unwrap();
            assert_eq!(report.base_inserted, 2);
            assert_eq!(view.version, 2);
            let q = parse_query("tc(1, Y)?").unwrap();
            assert_eq!(view.answers(&q).len(), 2);
            digest_before = view.digest();
        }
        // Recovery from WAL only (no snapshot was taken).
        let svc = Service::open(&dir, &cfg, 0).unwrap();
        let view = svc.current();
        assert_eq!(view.version, 2);
        assert_eq!(view.digest(), digest_before);
        let q = parse_query("tc(X, 3)?").unwrap();
        assert_eq!(view.answers(&q).len(), 2);
    }

    #[test]
    fn snapshot_bounds_replay_and_matches_uninterrupted() {
        let dir = tmpdir("snapshot");
        let cfg = FixpointConfig::serial();
        // Reference: same sequence on an engine that never restarts.
        let digest_ref;
        {
            let rdir = tmpdir("snapshot-ref");
            let svc = Service::open(&rdir, &cfg, 0).unwrap();
            svc.load_rules(RULES).unwrap();
            for i in 1..=6 {
                let mut d = EdbDelta::new();
                edge(&mut d, i, i + 1);
                svc.commit(&d).unwrap();
            }
            digest_ref = svc.current().digest();
        }
        {
            // Snapshot every 2 records: the log is reset mid-stream
            // several times.
            let svc = Service::open(&dir, &cfg, 2).unwrap();
            svc.load_rules(RULES).unwrap();
            for i in 1..=6 {
                let mut d = EdbDelta::new();
                edge(&mut d, i, i + 1);
                svc.commit(&d).unwrap();
            }
        }
        let svc = Service::open(&dir, &cfg, 2).unwrap();
        assert_eq!(svc.current().version, 7);
        assert_eq!(svc.current().digest(), digest_ref);
    }

    #[test]
    fn failed_commit_leaves_wal_engine_and_views_untouched() {
        let dir = tmpdir("failed-commit");
        let cfg = FixpointConfig::serial();
        let svc = Service::open(&dir, &cfg, 0).unwrap();
        svc.load_rules(RULES).unwrap();
        let mut ok = EdbDelta::new();
        edge(&mut ok, 1, 2);
        svc.commit(&ok).unwrap();
        let before = svc.current();

        // Arity mismatch: validation refuses before the WAL is touched.
        let mut bad = EdbDelta::new();
        bad.insert(Pred::new("e", 2), Tuple::ints(&[9]));
        assert!(svc.commit(&bad).is_err());
        // Writing to a derived predicate: also refused.
        let mut bad2 = EdbDelta::new();
        bad2.insert(Pred::new("tc", 2), Tuple::ints(&[9, 9]));
        assert!(svc.commit(&bad2).is_err());

        let after = svc.current();
        assert_eq!(after.version, before.version);
        assert_eq!(after.digest(), before.digest());

        // Restart: the refused commits left no trace in the WAL.
        drop(svc);
        let svc = Service::open(&dir, &cfg, 0).unwrap();
        assert_eq!(svc.current().version, before.version);
        assert_eq!(svc.current().digest(), before.digest());
    }

    #[test]
    fn pinned_views_are_snapshot_isolated() {
        let dir = tmpdir("isolation");
        let cfg = FixpointConfig::serial();
        let svc = Service::open(&dir, &cfg, 0).unwrap();
        svc.load_rules(RULES).unwrap();
        let mut d = EdbDelta::new();
        edge(&mut d, 1, 2);
        svc.commit(&d).unwrap();

        let pinned = svc.current();
        let q = parse_query("tc(1, Y)?").unwrap();
        assert_eq!(pinned.answers(&q).len(), 1);

        let mut d2 = EdbDelta::new();
        edge(&mut d2, 2, 3);
        svc.commit(&d2).unwrap();

        // The pinned view still answers from its version; the new view
        // sees the commit.
        assert_eq!(pinned.answers(&q).len(), 1);
        assert_eq!(svc.current().answers(&q).len(), 2);
        assert!(svc.current().version > pinned.version);
    }

    #[test]
    fn bad_rule_load_changes_nothing() {
        let dir = tmpdir("bad-load");
        let cfg = FixpointConfig::serial();
        let svc = Service::open(&dir, &cfg, 0).unwrap();
        svc.load_rules(RULES).unwrap();
        let before = svc.current();
        assert!(svc.load_rules("p(X) <- q(X").is_err()); // parse error
        assert!(svc.load_rules("p(X) <- ~p(X).").is_err()); // unstratified
        let after = svc.current();
        assert_eq!(after.version, before.version);
        assert_eq!(after.digest(), before.digest());
    }
}
