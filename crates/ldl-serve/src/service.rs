//! The transactional service: one resident [`Engine`] behind a commit
//! lock, a WAL + snapshot pair for durability, an immutable published
//! [`StateView`] per committed version for snapshot-isolated reads, a
//! **group-commit batcher** that coalesces concurrent WAL fsyncs, and
//! the **replication feed** primaries serve to read replicas.
//!
//! ## Commit protocol (atomic at every layer, group-committed)
//!
//! Phase 1, under the engine lock: validate the batch, append its
//! record to the WAL (buffered, not yet synced), apply it —
//! `Engine::apply_delta` rolls back to the exact pre-state on failure,
//! and the service then truncates the WAL over the record so recovery
//! never replays it. Phase 2, **outside** the engine lock: wait for the
//! record to become durable. The first committer to arrive becomes the
//! group leader and issues one `fsync` covering every frame written so
//! far; committers that pile up behind an in-flight fsync are all
//! acknowledged by the next one — n concurrent commits cost far fewer
//! than n fsyncs, and the fsync overlaps the next committer's apply.
//! Phase 3: publish the commit's `Arc<StateView>`. Publication happens
//! strictly after durability, so every published version is on disk;
//! readers pinned to older views are unaffected.
//!
//! Recovery loads the latest snapshot and replays the WAL tail over it;
//! a torn trailing frame (crash mid-append) is truncated — that commit
//! was never acknowledged. Because evaluation and maintenance are
//! deterministic with a canonical-order contract, a recovered state is
//! bit-for-bit identical to the uninterrupted one.
//!
//! ## Replication feed
//!
//! The service retains the encoded payloads of recent WAL records in a
//! bounded in-memory feed (they survive snapshot-triggered WAL resets,
//! up to the retention cap). [`Service::feed_since`] serves a replica's
//! `(epoch, version)` position: records when the feed still covers it,
//! a full **bootstrap image** (program text + EDB at the published
//! head) when it does not — including after an epoch mismatch, which
//! means the replica's history is not a prefix of this primary's. Only
//! *published* (hence durable) records are ever shipped, so a replica
//! can never get ahead of what a crashed primary would recover.
//!
//! A replica runs the same `Service` in read-only mode: shipped records
//! go through [`Service::apply_replicated`] (same WAL append + engine
//! apply as a local commit, one fsync per shipped batch) and bootstrap
//! images through [`Service::install_bootstrap`]. The canonical-order
//! determinism contract makes a replica's digest bit-for-bit equal to
//! the primary's at the same version.

use crate::snapshot::{self, Snapshot};
use crate::wal::{self, Wal, WalRecord};
use ldl_core::parser::parse_program;
use ldl_core::{LdlError, Pred, Program, Query, Result};
use ldl_eval::engine::filter_answers;
use ldl_eval::{EdbDelta, Engine, FixpointConfig, MaintenanceReport};
use std::collections::{HashMap, VecDeque};
use std::fs::{self, File};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// An immutable image of one committed version. Sessions pin one at
/// start (or on `refresh`) and read from it without taking the commit
/// lock — snapshot isolation by construction.
#[derive(Clone, Debug)]
pub struct StateView {
    /// Monotonic commit sequence number (0 = empty service).
    pub version: u64,
    /// The rule base, as last-loaded source text.
    pub program_text: String,
    /// The parsed rule base.
    pub program: Program,
    /// Base relations at this version.
    pub db: ldl_storage::Database,
    /// Derived relations at this version (canonical order).
    pub derived: HashMap<Pred, ldl_storage::Relation>,
}

impl StateView {
    /// The relation backing `p`: derived if `p` has rules, else base.
    pub fn relation(&self, p: Pred) -> Option<&ldl_storage::Relation> {
        self.derived.get(&p).or_else(|| self.db.relation(p))
    }

    /// Query answers against this view (goal's relation filtered by the
    /// goal's ground arguments) — same semantics as `Engine::answers`.
    pub fn answers(&self, query: &Query) -> ldl_storage::Relation {
        match self.relation(query.pred()) {
            Some(rel) => filter_answers(rel, &query.goal),
            None => ldl_storage::Relation::new(query.pred().arity),
        }
    }

    /// FNV-1a digest over every relation (base and derived), predicates
    /// in sorted order, rows in sorted (canonical) order — so the value
    /// names the logical state, independent of the storage order a
    /// particular interleaving of commits produced. Two views with the
    /// same digest hold exactly the same data — the comparison CI uses
    /// across restarts and across replicas.
    pub fn digest(&self) -> u64 {
        let mut preds: Vec<Pred> = self.db.preds();
        for p in self.derived.keys() {
            if !preds.contains(p) {
                preds.push(*p);
            }
        }
        preds.sort();
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
        };
        for p in preds {
            eat(p.name.as_str().as_bytes());
            eat(&(p.arity as u64).to_le_bytes());
            if let Some(rel) = self.relation(p) {
                let mut lines: Vec<String> = rel.rows().iter().map(|row| row.to_string()).collect();
                lines.sort_unstable();
                for line in lines {
                    eat(line.as_bytes());
                    eat(b"\n");
                }
            }
        }
        h
    }

    /// Total stored tuples (base + derived).
    pub fn total_tuples(&self) -> usize {
        self.db.total_tuples()
            + self
                .derived
                .values()
                .map(ldl_storage::Relation::len)
                .sum::<usize>()
    }
}

/// How a [`Service`] is opened: snapshot cadence, replication-feed
/// retention, and the node's role.
#[derive(Clone, Debug)]
pub struct ServiceOptions {
    /// Take a snapshot (and reset the WAL) after this many committed
    /// records; `0` disables periodic snapshots.
    pub snapshot_every: u64,
    /// Encoded WAL records retained in memory for the replication feed
    /// (a retention *window*: it survives snapshot-triggered WAL resets
    /// up to this many records; replicas further behind re-bootstrap).
    pub feed_retain: usize,
    /// `Some(addr)` makes this a read-only replica of the primary at
    /// `addr`: client writes are refused with a redirect, and the
    /// replication runner (see [`crate::replicate`]) keeps it caught up.
    pub replica_of: Option<String>,
}

impl ServiceOptions {
    /// Primary-role options with the given snapshot cadence.
    pub fn new(snapshot_every: u64) -> ServiceOptions {
        ServiceOptions {
            snapshot_every,
            feed_retain: 1024,
            replica_of: None,
        }
    }

    /// Replica-role options: read-only, replicating from `primary`.
    pub fn replica(snapshot_every: u64, primary: impl Into<String>) -> ServiceOptions {
        ServiceOptions {
            replica_of: Some(primary.into()),
            ..ServiceOptions::new(snapshot_every)
        }
    }
}

/// What the replication runner most recently observed; surfaced through
/// the `stats` wire op. All counters are for the current process run.
#[derive(Clone, Debug, Default)]
pub struct ReplicationStatus {
    /// A subscription to the primary is live.
    pub connected: bool,
    /// The primary's published head version, as of the last response.
    pub primary_head: u64,
    /// Bytes of WAL records the primary still holds for us.
    pub behind_bytes: u64,
    /// Connection attempts after the first (capped exponential backoff).
    pub reconnects: u64,
    /// Full snapshot bootstraps (0 = resumed from local WAL position).
    pub bootstraps: u64,
    /// The most recent connection or apply error, if the link is down.
    pub last_error: Option<String>,
}

/// Monotonic commit-path counters (process lifetime). `fsyncs <
/// commits` under concurrency is the group-commit batcher visibly
/// coalescing.
#[derive(Clone, Copy, Debug, Default)]
pub struct ServiceCounters {
    /// WAL records committed (rule loads + EDB deltas + replicated).
    pub commits: u64,
    /// `fsync` calls issued for WAL durability.
    pub fsyncs: u64,
}

/// One reply of the replication feed.
#[derive(Debug)]
pub enum Feed {
    /// The follower is at the published head.
    UpToDate {
        /// The published head version.
        head: u64,
    },
    /// Encoded WAL records `(seq, frame payload)` continuing the
    /// follower's position, oldest first.
    Records {
        /// The published head version.
        head: u64,
        /// The shipped records.
        records: Vec<(u64, Vec<u8>)>,
        /// Bytes of retained records beyond this reply.
        behind_bytes: u64,
    },
    /// The feed no longer covers the follower's position (or its epoch
    /// diverged): a full image of the published head to install.
    Bootstrap {
        /// Version of the image.
        seq: u64,
        /// The rule base at that version, as source text.
        program_text: String,
        /// The EDB at that version, codec-encoded.
        db: Vec<u8>,
    },
}

struct Inner {
    engine: Engine,
    cfg: FixpointConfig,
    program_text: String,
    wal: Wal,
    dir: PathBuf,
    snapshot_every: u64,
    records_since_snapshot: u64,
    version: u64,
    epoch: u64,
    /// Encoded payloads of recent records, `(seq, payload)`, oldest
    /// first — the replication feed's retention window.
    feed: VecDeque<(u64, Vec<u8>)>,
    feed_retain: usize,
}

struct SyncState {
    /// Highest seq whose WAL frame is completely written (maybe
    /// unsynced). Frames are appended under the engine lock, so every
    /// seq up to this is contiguous in the file.
    written: u64,
    /// Highest seq known durable (covered by an fsync or a snapshot).
    durable: u64,
    /// A group leader's fsync is in flight.
    syncing: bool,
    /// Sticky fsync failure: durability can no longer be promised.
    failed: Option<String>,
}

/// The shared service handle. Clone the `Arc` per connection; commits
/// serialize on the engine lock but coalesce their fsyncs, reads go
/// through pinned views and never block.
pub struct Service {
    inner: Mutex<Inner>,
    /// The latest published (durable) view. Its own lock so readers
    /// never contend with the engine lock.
    published: Mutex<Arc<StateView>>,
    publish_cv: Condvar,
    sync: Mutex<SyncState>,
    sync_cv: Condvar,
    /// Independently owned WAL file handle for out-of-lock fsyncs.
    wal_file: File,
    /// `Some(addr)` = read-only replica of the primary at `addr`.
    replica_of: Option<String>,
    repl_status: Mutex<ReplicationStatus>,
    commits: AtomicU64,
    fsyncs: AtomicU64,
}

impl Service {
    /// Opens (or creates) a primary service in `dir`: loads the latest
    /// snapshot, replays the WAL tail over it, and publishes the
    /// recovered view. `snapshot_every` = records between snapshots
    /// (`0` = only on [`Service::snapshot_now`]).
    pub fn open(dir: &Path, cfg: &FixpointConfig, snapshot_every: u64) -> Result<Service> {
        Self::open_with(dir, cfg, ServiceOptions::new(snapshot_every))
    }

    /// Opens a service with explicit [`ServiceOptions`] (role, feed
    /// retention, snapshot cadence).
    pub fn open_with(dir: &Path, cfg: &FixpointConfig, opts: ServiceOptions) -> Result<Service> {
        fs::create_dir_all(dir).map_err(|e| {
            LdlError::Eval(format!("service: cannot create {}: {e}", dir.display()))
        })?;
        let epoch = match snapshot::read_meta(dir)? {
            Some(e) => e,
            None => {
                let e = mint_epoch();
                snapshot::write_meta(dir, e)?;
                e
            }
        };
        let (snap_seq, program_text, db) = match snapshot::load_snapshot(dir)? {
            Some(Snapshot {
                seq,
                program_text,
                db,
            }) => (seq, program_text, db),
            None => (0, String::new(), ldl_storage::Database::new()),
        };
        let program = parse_program(&program_text)
            .map_err(|e| LdlError::Eval(format!("service: snapshot program text: {e}")))?;
        let mut engine = Engine::evaluate(&program, &db, cfg)?;
        let mut program_text = program_text;

        let (mut wal, records) = Wal::open(&dir.join("wal.bin"))?;
        let mut version = snap_seq;
        let mut replayed = 0u64;
        let mut feed = VecDeque::new();
        let total = records.len();
        for (i, (seq, rec)) in records.into_iter().enumerate() {
            if seq <= snap_seq {
                // Already folded into the snapshot.
                continue;
            }
            let apply = match &rec {
                WalRecord::Rules(text) => {
                    Self::install_rules(&mut engine, &mut program_text, text, cfg)
                }
                WalRecord::Delta(delta) => engine.apply_delta(delta).map(|_| ()),
            };
            match apply {
                Ok(()) => {
                    version = seq;
                    replayed += 1;
                    feed.push_back((seq, wal::encode_record(seq, &rec)));
                }
                Err(_) if i + 1 == total => {
                    // The record was durable but its apply failed — the
                    // live server truncates exactly this way; a crash
                    // between the fsync and the truncate lands here.
                    wal.truncate_last()?;
                    break;
                }
                Err(e) => {
                    return Err(LdlError::Eval(format!(
                        "service: WAL record {seq} failed to replay mid-log: {e}"
                    )));
                }
            }
        }
        while feed.len() > opts.feed_retain {
            feed.pop_front();
        }

        let wal_file = wal.sync_handle()?;
        let current = Arc::new(Self::view(version, &program_text, &engine));
        let mut inner = Inner {
            engine,
            cfg: cfg.clone(),
            program_text,
            wal,
            dir: dir.to_path_buf(),
            snapshot_every: opts.snapshot_every,
            records_since_snapshot: replayed,
            version,
            epoch,
            feed,
            feed_retain: opts.feed_retain.max(1),
        };
        if inner.snapshot_every > 0 && inner.records_since_snapshot >= inner.snapshot_every {
            inner.snapshot_now()?;
        }
        Ok(Service {
            inner: Mutex::new(inner),
            published: Mutex::new(current),
            publish_cv: Condvar::new(),
            sync: Mutex::new(SyncState {
                written: version,
                durable: version,
                syncing: false,
                failed: None,
            }),
            sync_cv: Condvar::new(),
            wal_file,
            replica_of: opts.replica_of,
            repl_status: Mutex::new(ReplicationStatus::default()),
            commits: AtomicU64::new(0),
            fsyncs: AtomicU64::new(0),
        })
    }

    /// Installs a new rule base over the engine's current EDB: the
    /// text's ground facts merge into the EDB, its rules replace the
    /// program. Fails (engine untouched) if the text does not parse,
    /// does not stratify, or does not evaluate.
    fn install_rules(
        engine: &mut Engine,
        program_text: &mut String,
        text: &str,
        cfg: &FixpointConfig,
    ) -> Result<()> {
        let program = parse_program(text)?;
        let mut db = engine.database().clone();
        db.load_facts(&program);
        *engine = Engine::evaluate(&program, &db, cfg)?;
        *program_text = text.to_string();
        Ok(())
    }

    fn view(version: u64, program_text: &str, engine: &Engine) -> StateView {
        StateView {
            version,
            program_text: program_text.to_string(),
            program: engine.program().clone(),
            db: engine.database().clone(),
            derived: engine.derived().clone(),
        }
    }

    /// The latest committed (published, durable) view.
    pub fn current(&self) -> Arc<StateView> {
        self.published.lock().expect("published lock").clone()
    }

    /// The current published commit sequence number.
    pub fn version(&self) -> u64 {
        self.current().version
    }

    /// The history epoch of this node's data directory.
    pub fn epoch(&self) -> u64 {
        self.inner.lock().expect("service lock").epoch
    }

    /// This node's replication position, `(epoch, applied version)`.
    pub fn position(&self) -> (u64, u64) {
        let inner = self.inner.lock().expect("service lock");
        (inner.epoch, inner.version)
    }

    /// `Some(addr)` when this service is a read-only replica.
    pub fn primary_target(&self) -> Option<&str> {
        self.replica_of.as_deref()
    }

    /// Commit-path counters (commits vs coalesced fsyncs).
    pub fn counters(&self) -> ServiceCounters {
        ServiceCounters {
            commits: self.commits.load(Ordering::Relaxed),
            fsyncs: self.fsyncs.load(Ordering::Relaxed),
        }
    }

    /// A copy of the replication runner's latest status.
    pub fn replication_status(&self) -> ReplicationStatus {
        self.repl_status.lock().expect("repl status lock").clone()
    }

    /// Updates the replication status in place (replication runner
    /// only).
    pub fn update_replication_status(&self, f: impl FnOnce(&mut ReplicationStatus)) {
        f(&mut self.repl_status.lock().expect("repl status lock"));
    }

    fn check_writable(&self) -> Result<()> {
        match &self.replica_of {
            Some(primary) => Err(LdlError::Eval(format!(
                "read-only replica: writes must go to the primary at {primary}"
            ))),
            None => Ok(()),
        }
    }

    /// Loads a rule base (replacing the program, merging its facts)
    /// transactionally: evaluated on a candidate first, WAL-logged,
    /// group-fsynced, then installed and published. On `Err` nothing
    /// changed.
    pub fn load_rules(&self, text: &str) -> Result<Arc<StateView>> {
        self.check_writable()?;
        let (seq, view, snapped) = {
            let mut inner = self.inner.lock().expect("service lock");
            // Dry-run on a candidate so the WAL never records a load the
            // engine would refuse.
            {
                let program = parse_program(text)?;
                let mut db = inner.engine.database().clone();
                db.load_facts(&program);
                Engine::evaluate(&program, &db, &inner.cfg)?;
            }
            let seq = inner.version + 1;
            let payload = inner
                .wal
                .append_nosync(seq, &WalRecord::Rules(text.to_string()))?;
            let cfg = inner.cfg.clone();
            let Inner {
                engine,
                program_text,
                ..
            } = &mut *inner;
            Self::install_rules(engine, program_text, text, &cfg)
                .expect("validated rule load cannot fail");
            inner.version = seq;
            inner.push_feed(seq, payload);
            let view = Arc::new(Self::view(seq, &inner.program_text, &inner.engine));
            let snapped = inner.maybe_snapshot()?;
            (seq, view, snapped)
        };
        self.commits.fetch_add(1, Ordering::Relaxed);
        self.note_written(seq, snapped);
        self.wait_durable(seq)?;
        self.publish(view.clone());
        Ok(view)
    }

    /// Commits one EDB batch transactionally. On `Ok` the new view is
    /// published and durable (WAL group-fsynced before publication). On
    /// `Err` the engine, database, and WAL are exactly as they were —
    /// the caller keeps the staged batch.
    pub fn commit(&self, delta: &EdbDelta) -> Result<(Arc<StateView>, MaintenanceReport)> {
        self.check_writable()?;
        if delta.is_empty() {
            return Ok((self.current(), MaintenanceReport::default()));
        }
        let (seq, view, report, snapped) = {
            let mut inner = self.inner.lock().expect("service lock");
            inner.engine.validate_delta(delta)?;
            let seq = inner.version + 1;
            let payload = inner
                .wal
                .append_nosync(seq, &WalRecord::Delta(delta.clone()))?;
            match inner.engine.apply_delta(delta) {
                Ok(report) => {
                    inner.version = seq;
                    inner.push_feed(seq, payload);
                    let view = Arc::new(Self::view(seq, &inner.program_text, &inner.engine));
                    let snapped = inner.maybe_snapshot()?;
                    (seq, view, report, snapped)
                }
                Err(e) => {
                    // The engine rolled itself back; erase the (never
                    // synced) record so recovery agrees with the live
                    // refusal.
                    inner.wal.truncate_last()?;
                    return Err(e);
                }
            }
        };
        self.commits.fetch_add(1, Ordering::Relaxed);
        self.note_written(seq, snapped);
        self.wait_durable(seq)?;
        self.publish(view.clone());
        Ok((view, report))
    }

    /// Marks `seq`'s frame fully written; `also_durable` when a
    /// snapshot already persisted everything up to it.
    fn note_written(&self, seq: u64, also_durable: bool) {
        let mut s = self.sync.lock().expect("sync lock");
        s.written = s.written.max(seq);
        if also_durable && s.durable < seq {
            s.durable = seq;
            self.sync_cv.notify_all();
        }
    }

    /// Blocks until `seq` is durable. The first waiter becomes the
    /// group leader and fsyncs once for every frame written so far;
    /// later waiters are acknowledged wholesale — that single fsync is
    /// the group commit.
    fn wait_durable(&self, seq: u64) -> Result<()> {
        let mut s = self.sync.lock().expect("sync lock");
        loop {
            if let Some(msg) = &s.failed {
                return Err(LdlError::Eval(format!(
                    "service: WAL durability lost (fsync failed: {msg})"
                )));
            }
            if s.durable >= seq {
                return Ok(());
            }
            if s.syncing {
                s = self.sync_cv.wait(s).expect("sync cv");
                continue;
            }
            s.syncing = true;
            let target = s.written;
            drop(s);
            let res = self.wal_file.sync_all();
            self.fsyncs.fetch_add(1, Ordering::Relaxed);
            s = self.sync.lock().expect("sync lock");
            s.syncing = false;
            match res {
                Ok(()) => s.durable = s.durable.max(target),
                Err(e) => s.failed = Some(e.to_string()),
            }
            self.sync_cv.notify_all();
        }
    }

    /// Publishes `view` if it is newer than the current head and wakes
    /// feed subscribers.
    fn publish(&self, view: Arc<StateView>) {
        let mut cur = self.published.lock().expect("published lock");
        if view.version > cur.version {
            *cur = view;
        }
        self.publish_cv.notify_all();
    }

    /// Publishes `view` unconditionally (bootstrap installs may move a
    /// diverged replica's head backwards).
    fn publish_force(&self, view: Arc<StateView>) {
        *self.published.lock().expect("published lock") = view;
        self.publish_cv.notify_all();
    }

    /// Blocks until the published head exceeds `above` or `timeout`
    /// elapses; returns the head either way. The `subscribe` wire op's
    /// long-poll.
    pub fn wait_for_version(&self, above: u64, timeout: Duration) -> u64 {
        let deadline = Instant::now() + timeout;
        let mut cur = self.published.lock().expect("published lock");
        while cur.version <= above {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            let (guard, res) = self
                .publish_cv
                .wait_timeout(cur, deadline - now)
                .expect("publish cv");
            cur = guard;
            if res.timed_out() {
                break;
            }
        }
        cur.version
    }

    /// Serves a follower at `(epoch, since)`: retained records after
    /// `since` (capped at `max_records` and at the published head),
    /// `UpToDate` when none, or a `Bootstrap` image when the feed no
    /// longer covers the position — wrong epoch, a position beyond the
    /// head (the follower's history diverged), or records already
    /// evicted from the retention window.
    pub fn feed_since(&self, epoch: u64, since: u64, max_records: usize) -> Feed {
        // The published head is the durable horizon: never ship a
        // record a crashed primary might not recover.
        let head_view = self.current();
        let head = head_view.version;
        let inner = self.inner.lock().expect("service lock");
        if epoch != inner.epoch || since > head {
            return Self::bootstrap_from(&head_view);
        }
        if since == head {
            return Feed::UpToDate { head };
        }
        let covered = inner
            .feed
            .front()
            .is_some_and(|&(first, _)| first <= since + 1);
        if !covered {
            return Self::bootstrap_from(&head_view);
        }
        let mut records = Vec::new();
        let mut behind_bytes = 0u64;
        for (seq, payload) in inner.feed.iter() {
            if *seq <= since || *seq > head {
                continue;
            }
            if records.len() < max_records.max(1) {
                records.push((*seq, payload.clone()));
            } else {
                behind_bytes += payload.len() as u64;
            }
        }
        Feed::Records {
            head,
            records,
            behind_bytes,
        }
    }

    fn bootstrap_from(view: &StateView) -> Feed {
        Feed::Bootstrap {
            seq: view.version,
            program_text: view.program_text.clone(),
            db: ldl_storage::codec::encode_database(&view.db),
        }
    }

    /// Applies a batch of shipped records on a replica: each is
    /// appended to the local WAL and applied to the engine in order,
    /// then the whole batch is made durable with **one** fsync and the
    /// final view published. Returns that view.
    pub fn apply_replicated(&self, batch: &[(u64, Vec<u8>)]) -> Result<Arc<StateView>> {
        if batch.is_empty() {
            return Ok(self.current());
        }
        let mut decoded = Vec::with_capacity(batch.len());
        for (seq, payload) in batch {
            let (dseq, rec) = wal::decode_record(payload)?;
            if dseq != *seq {
                return Err(LdlError::Eval(format!(
                    "replica: shipped record claims seq {dseq}, feed said {seq}"
                )));
            }
            decoded.push((dseq, rec, payload));
        }
        let (view, last) = {
            let mut inner = self.inner.lock().expect("service lock");
            for (seq, rec, payload) in &decoded {
                if *seq != inner.version + 1 {
                    return Err(LdlError::Eval(format!(
                        "replica: out-of-order record {seq} (expected {})",
                        inner.version + 1
                    )));
                }
                inner.wal.append_payload_nosync(payload)?;
                let cfg = inner.cfg.clone();
                let applied = match rec {
                    WalRecord::Rules(text) => {
                        let Inner {
                            engine,
                            program_text,
                            ..
                        } = &mut *inner;
                        Self::install_rules(engine, program_text, text, &cfg)
                    }
                    WalRecord::Delta(delta) => inner.engine.apply_delta(delta).map(|_| ()),
                };
                if let Err(e) = applied {
                    // A record the primary committed must apply here
                    // too (determinism contract) — this is divergence.
                    // Keep the good prefix consistent on disk and
                    // surface the error loudly.
                    inner.wal.truncate_last()?;
                    inner.wal.sync()?;
                    return Err(LdlError::Eval(format!(
                        "replica: shipped record {seq} refused by the engine: {e}"
                    )));
                }
                inner.version = *seq;
                let owned = payload.to_vec();
                inner.push_feed(*seq, owned);
                inner.records_since_snapshot += 1;
            }
            inner.wal.sync()?;
            self.fsyncs.fetch_add(1, Ordering::Relaxed);
            let snapped =
                inner.snapshot_every > 0 && inner.records_since_snapshot >= inner.snapshot_every;
            if snapped {
                inner.snapshot_now()?;
            }
            let view = Arc::new(Self::view(
                inner.version,
                &inner.program_text,
                &inner.engine,
            ));
            (view, inner.version)
        };
        self.commits
            .fetch_add(decoded.len() as u64, Ordering::Relaxed);
        self.note_written(last, true);
        self.publish(view.clone());
        Ok(view)
    }

    /// Installs a bootstrap image on a replica: persists it as the
    /// local snapshot, adopts the primary's epoch, resets the local
    /// WAL, and publishes the image's view (which may move the head
    /// backwards after a divergence).
    pub fn install_bootstrap(
        &self,
        epoch: u64,
        seq: u64,
        program_text: &str,
        db_bytes: &[u8],
    ) -> Result<Arc<StateView>> {
        let program = parse_program(program_text)
            .map_err(|e| LdlError::Eval(format!("bootstrap: program text: {e}")))?;
        let db = ldl_storage::codec::decode_database(db_bytes)?;
        let view = {
            let mut inner = self.inner.lock().expect("service lock");
            let engine = Engine::evaluate(&program, &db, &inner.cfg)?;
            // Image durable before the WAL reset, exactly like a
            // snapshot: a crash mid-bootstrap leaves either the old
            // state or the new image, never a mix.
            snapshot::write_snapshot(&inner.dir, seq, program_text, &db)?;
            snapshot::write_meta(&inner.dir, epoch)?;
            inner.wal.reset()?;
            inner.engine = engine;
            inner.program_text = program_text.to_string();
            inner.version = seq;
            inner.epoch = epoch;
            inner.records_since_snapshot = 0;
            inner.feed.clear();
            Arc::new(Self::view(seq, &inner.program_text, &inner.engine))
        };
        {
            let mut s = self.sync.lock().expect("sync lock");
            s.written = seq;
            s.durable = seq;
            self.sync_cv.notify_all();
        }
        self.publish_force(view.clone());
        Ok(view)
    }

    /// Forces a snapshot of the current version and resets the WAL.
    pub fn snapshot_now(&self) -> Result<()> {
        let version = {
            let mut inner = self.inner.lock().expect("service lock");
            inner.snapshot_now()?;
            inner.version
        };
        self.note_written(version, true);
        Ok(())
    }
}

impl Inner {
    fn push_feed(&mut self, seq: u64, payload: Vec<u8>) {
        self.feed.push_back((seq, payload));
        while self.feed.len() > self.feed_retain {
            self.feed.pop_front();
        }
    }

    /// Counts a committed record and snapshots at the cadence; returns
    /// whether a snapshot ran (making everything durable).
    fn maybe_snapshot(&mut self) -> Result<bool> {
        self.records_since_snapshot += 1;
        if self.snapshot_every > 0 && self.records_since_snapshot >= self.snapshot_every {
            self.snapshot_now()?;
            return Ok(true);
        }
        Ok(false)
    }

    fn snapshot_now(&mut self) -> Result<()> {
        snapshot::write_snapshot(
            &self.dir,
            self.version,
            &self.program_text,
            self.engine.database(),
        )?;
        // Only reset the log once the image is durably in place. The
        // replication feed keeps its retained records — a WAL reset
        // does not force replicas within the window to re-bootstrap.
        self.wal.reset()?;
        self.records_since_snapshot = 0;
        Ok(())
    }
}

/// Mints a fresh history epoch: a mixed hash of wall clock and pid.
/// Uniqueness across re-created data directories is what matters, not
/// unpredictability.
fn mint_epoch() -> u64 {
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0);
    let mut z = nanos ^ ((std::process::id() as u64) << 48);
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z = z ^ (z >> 31);
    z.max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldl_core::parser::parse_query;
    use ldl_storage::Tuple;

    const RULES: &str = "tc(X, Y) <- e(X, Y).\ntc(X, Y) <- e(X, Z), tc(Z, Y).";

    fn tmpdir(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("ldl-serve-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        d
    }

    fn edge(delta: &mut EdbDelta, a: i64, b: i64) {
        delta.insert(Pred::new("e", 2), Tuple::ints(&[a, b]));
    }

    #[test]
    fn load_commit_query_and_recover() {
        let dir = tmpdir("basic");
        let cfg = FixpointConfig::serial();
        let digest_before;
        let epoch_before;
        {
            let svc = Service::open(&dir, &cfg, 0).unwrap();
            epoch_before = svc.epoch();
            assert_ne!(epoch_before, 0, "fresh directories mint an epoch");
            svc.load_rules(RULES).unwrap();
            let mut d = EdbDelta::new();
            edge(&mut d, 1, 2);
            edge(&mut d, 2, 3);
            let (view, report) = svc.commit(&d).unwrap();
            assert_eq!(report.base_inserted, 2);
            assert_eq!(view.version, 2);
            let q = parse_query("tc(1, Y)?").unwrap();
            assert_eq!(view.answers(&q).len(), 2);
            digest_before = view.digest();
            let c = svc.counters();
            assert_eq!(c.commits, 2);
            assert!(c.fsyncs >= 1);
        }
        // Recovery from WAL only (no snapshot was taken). The epoch is
        // stable across restarts.
        let svc = Service::open(&dir, &cfg, 0).unwrap();
        assert_eq!(svc.epoch(), epoch_before);
        let view = svc.current();
        assert_eq!(view.version, 2);
        assert_eq!(view.digest(), digest_before);
        let q = parse_query("tc(X, 3)?").unwrap();
        assert_eq!(view.answers(&q).len(), 2);
    }

    #[test]
    fn snapshot_bounds_replay_and_matches_uninterrupted() {
        let dir = tmpdir("snapshot");
        let cfg = FixpointConfig::serial();
        // Reference: same sequence on an engine that never restarts.
        let digest_ref;
        {
            let rdir = tmpdir("snapshot-ref");
            let svc = Service::open(&rdir, &cfg, 0).unwrap();
            svc.load_rules(RULES).unwrap();
            for i in 1..=6 {
                let mut d = EdbDelta::new();
                edge(&mut d, i, i + 1);
                svc.commit(&d).unwrap();
            }
            digest_ref = svc.current().digest();
        }
        {
            // Snapshot every 2 records: the log is reset mid-stream
            // several times.
            let svc = Service::open(&dir, &cfg, 2).unwrap();
            svc.load_rules(RULES).unwrap();
            for i in 1..=6 {
                let mut d = EdbDelta::new();
                edge(&mut d, i, i + 1);
                svc.commit(&d).unwrap();
            }
        }
        let svc = Service::open(&dir, &cfg, 2).unwrap();
        assert_eq!(svc.current().version, 7);
        assert_eq!(svc.current().digest(), digest_ref);
    }

    #[test]
    fn failed_commit_leaves_wal_engine_and_views_untouched() {
        let dir = tmpdir("failed-commit");
        let cfg = FixpointConfig::serial();
        let svc = Service::open(&dir, &cfg, 0).unwrap();
        svc.load_rules(RULES).unwrap();
        let mut ok = EdbDelta::new();
        edge(&mut ok, 1, 2);
        svc.commit(&ok).unwrap();
        let before = svc.current();

        // Arity mismatch: validation refuses before the WAL is touched.
        let mut bad = EdbDelta::new();
        bad.insert(Pred::new("e", 2), Tuple::ints(&[9]));
        assert!(svc.commit(&bad).is_err());
        // Writing to a derived predicate: also refused.
        let mut bad2 = EdbDelta::new();
        bad2.insert(Pred::new("tc", 2), Tuple::ints(&[9, 9]));
        assert!(svc.commit(&bad2).is_err());

        let after = svc.current();
        assert_eq!(after.version, before.version);
        assert_eq!(after.digest(), before.digest());

        // Restart: the refused commits left no trace in the WAL.
        drop(svc);
        let svc = Service::open(&dir, &cfg, 0).unwrap();
        assert_eq!(svc.current().version, before.version);
        assert_eq!(svc.current().digest(), before.digest());
    }

    #[test]
    fn pinned_views_are_snapshot_isolated() {
        let dir = tmpdir("isolation");
        let cfg = FixpointConfig::serial();
        let svc = Service::open(&dir, &cfg, 0).unwrap();
        svc.load_rules(RULES).unwrap();
        let mut d = EdbDelta::new();
        edge(&mut d, 1, 2);
        svc.commit(&d).unwrap();

        let pinned = svc.current();
        let q = parse_query("tc(1, Y)?").unwrap();
        assert_eq!(pinned.answers(&q).len(), 1);

        let mut d2 = EdbDelta::new();
        edge(&mut d2, 2, 3);
        svc.commit(&d2).unwrap();

        // The pinned view still answers from its version; the new view
        // sees the commit.
        assert_eq!(pinned.answers(&q).len(), 1);
        assert_eq!(svc.current().answers(&q).len(), 2);
        assert!(svc.current().version > pinned.version);
    }

    #[test]
    fn bad_rule_load_changes_nothing() {
        let dir = tmpdir("bad-load");
        let cfg = FixpointConfig::serial();
        let svc = Service::open(&dir, &cfg, 0).unwrap();
        svc.load_rules(RULES).unwrap();
        let before = svc.current();
        assert!(svc.load_rules("p(X) <- q(X").is_err()); // parse error
        assert!(svc.load_rules("p(X) <- ~p(X).").is_err()); // unstratified
        let after = svc.current();
        assert_eq!(after.version, before.version);
        assert_eq!(after.digest(), before.digest());
    }

    #[test]
    fn concurrent_commits_group_their_fsyncs_and_stay_exact() {
        let dir = tmpdir("group");
        let cfg = FixpointConfig::serial();
        let svc = Arc::new(Service::open(&dir, &cfg, 0).unwrap());
        svc.load_rules(RULES).unwrap();
        let writers = 8u64;
        let per = 10u64;
        std::thread::scope(|scope| {
            for w in 0..writers {
                let svc = svc.clone();
                scope.spawn(move || {
                    for i in 0..per {
                        let mut d = EdbDelta::new();
                        edge(&mut d, (100 * w + i) as i64, (100 * w + i + 1) as i64);
                        svc.commit(&d).unwrap();
                    }
                });
            }
        });
        let c = svc.counters();
        assert_eq!(c.commits, writers * per + 1);
        assert!(
            c.fsyncs <= c.commits,
            "leader fsyncs can never exceed commits ({c:?})"
        );
        let view = svc.current();
        assert_eq!(view.version, writers * per + 1);
        let digest_live = view.digest();

        // Recovery sees every acknowledged commit, bit for bit.
        drop(view);
        let svc2 = Service::open(&dir, &cfg, 0).unwrap();
        assert_eq!(svc2.current().version, writers * per + 1);
        assert_eq!(svc2.current().digest(), digest_live);
    }

    #[test]
    fn feed_serves_records_and_bootstraps_beyond_window() {
        let dir = tmpdir("feed");
        let cfg = FixpointConfig::serial();
        let svc = Service::open_with(
            &dir,
            &cfg,
            ServiceOptions {
                feed_retain: 4,
                ..ServiceOptions::new(0)
            },
        )
        .unwrap();
        let epoch = svc.epoch();
        svc.load_rules(RULES).unwrap();
        for i in 1..=6 {
            let mut d = EdbDelta::new();
            edge(&mut d, i, i + 1);
            svc.commit(&d).unwrap();
        }
        // Head = 7 (load + 6 commits); retention holds seqs 4..=7.
        match svc.feed_since(epoch, 7, 16) {
            Feed::UpToDate { head } => assert_eq!(head, 7),
            other => panic!("expected UpToDate, got {other:?}"),
        }
        match svc.feed_since(epoch, 4, 16) {
            Feed::Records {
                head,
                records,
                behind_bytes,
            } => {
                assert_eq!(head, 7);
                assert_eq!(
                    records.iter().map(|(s, _)| *s).collect::<Vec<_>>(),
                    vec![5, 6, 7]
                );
                assert_eq!(behind_bytes, 0);
            }
            other => panic!("expected Records, got {other:?}"),
        }
        // max_records caps a reply and reports the remainder in bytes.
        match svc.feed_since(epoch, 4, 2) {
            Feed::Records {
                records,
                behind_bytes,
                ..
            } => {
                assert_eq!(records.len(), 2);
                assert!(behind_bytes > 0);
            }
            other => panic!("expected Records, got {other:?}"),
        }
        // Positions before the window, beyond the head, or under a
        // different epoch all get a bootstrap image.
        for (e, since) in [(epoch, 1), (epoch, 99), (epoch ^ 1, 7)] {
            match svc.feed_since(e, since, 16) {
                Feed::Bootstrap { seq, .. } => assert_eq!(seq, 7),
                other => panic!("expected Bootstrap for since={since}, got {other:?}"),
            }
        }
    }

    #[test]
    fn replica_roundtrip_records_and_bootstrap() {
        let cfg = FixpointConfig::serial();
        let primary = Service::open(&tmpdir("repl-p"), &cfg, 0).unwrap();
        let (epoch, _) = primary.position();
        primary.load_rules(RULES).unwrap();
        for i in 1..=3 {
            let mut d = EdbDelta::new();
            edge(&mut d, i, i + 1);
            primary.commit(&d).unwrap();
        }

        let replica = Service::open_with(
            &tmpdir("repl-r"),
            &cfg,
            ServiceOptions::replica(0, "nowhere:0"),
        )
        .unwrap();
        // Fresh replica: its own minted epoch mismatches → bootstrap.
        let (repl_epoch, since) = replica.position();
        assert_ne!(repl_epoch, epoch);
        let Feed::Bootstrap {
            seq,
            program_text,
            db,
        } = primary.feed_since(repl_epoch, since, 16)
        else {
            panic!("fresh replica must bootstrap");
        };
        replica
            .install_bootstrap(epoch, seq, &program_text, &db)
            .unwrap();
        assert_eq!(replica.position(), (epoch, seq));
        assert_eq!(replica.current().digest(), primary.current().digest());

        // More commits ship as records and apply bit-for-bit.
        for i in 4..=6 {
            let mut d = EdbDelta::new();
            edge(&mut d, i, i + 1);
            primary.commit(&d).unwrap();
        }
        let (_, since) = replica.position();
        let Feed::Records { head, records, .. } = primary.feed_since(epoch, since, 16) else {
            panic!("caught-up replica must get records");
        };
        let view = replica.apply_replicated(&records).unwrap();
        assert_eq!(view.version, head);
        assert_eq!(view.digest(), primary.current().digest());

        // Writes are refused with a redirect.
        let mut d = EdbDelta::new();
        edge(&mut d, 99, 100);
        let err = replica.commit(&d).unwrap_err().to_string();
        assert!(err.contains("read-only replica"), "{err}");
        assert!(err.contains("nowhere:0"), "{err}");
    }
}
