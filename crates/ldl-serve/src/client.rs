//! A blocking client for the `ldl-serve` wire protocol, used by
//! `ldl-shell --connect`, the integration tests, and the stream bench.

use crate::json::{self, Json};
use crate::server::{is_tcp_target, Conn};
use std::io::{self, BufRead, BufReader, Write};
use std::net::TcpStream;
#[cfg(unix)]
use std::os::unix::net::UnixStream;

/// One connected session.
pub struct Client {
    reader: BufReader<Box<dyn Conn>>,
    writer: Box<dyn Conn>,
}

fn proto_err(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

impl Client {
    /// Connects to `target`: `host:port` (TCP) or a Unix socket path.
    pub fn connect(target: &str) -> io::Result<Client> {
        let conn: Box<dyn Conn> = if is_tcp_target(target) {
            let s = TcpStream::connect(target)?;
            // Request/response in single-line frames; don't let Nagle
            // hold the frame back for a delayed ACK.
            s.set_nodelay(true)?;
            Box::new(s)
        } else {
            #[cfg(unix)]
            {
                Box::new(UnixStream::connect(target)?)
            }
            #[cfg(not(unix))]
            {
                return Err(io::Error::new(
                    io::ErrorKind::Unsupported,
                    "unix sockets are not available on this platform",
                ));
            }
        };
        let reader = BufReader::new(conn.try_clone_conn()?);
        Ok(Client {
            reader,
            writer: conn,
        })
    }

    /// Sends one request object and reads one response line.
    pub fn request(&mut self, v: &Json) -> io::Result<Json> {
        writeln!(self.writer, "{v}")?;
        self.writer.flush()?;
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(proto_err("server closed the connection"));
        }
        json::parse(line.trim_end()).map_err(|e| proto_err(format!("bad response: {e}")))
    }

    /// Sends a request and fails with the server's error message when
    /// the response carries `"ok": false`.
    pub fn request_ok(&mut self, v: &Json) -> io::Result<Json> {
        let resp = self.request(v)?;
        match resp.get("ok").and_then(Json::as_bool) {
            Some(true) => Ok(resp),
            Some(false) => Err(proto_err(
                resp.get("error")
                    .and_then(Json::as_str)
                    .unwrap_or("unknown server error")
                    .to_string(),
            )),
            None => Err(proto_err("response without 'ok' member")),
        }
    }

    fn op(name: &str) -> Json {
        Json::obj(vec![("op", Json::str(name))])
    }

    fn op_with(name: &str, key: &str, value: &str) -> Json {
        Json::obj(vec![("op", Json::str(name)), (key, Json::str(value))])
    }

    /// `hello` handshake; returns the pinned version.
    pub fn hello(&mut self) -> io::Result<u64> {
        let r = self.request_ok(&Self::op("hello"))?;
        Ok(r.get("version").and_then(Json::as_int).unwrap_or(0) as u64)
    }

    /// Loads a rule base; returns the new version.
    pub fn load(&mut self, text: &str) -> io::Result<u64> {
        let r = self.request_ok(&Self::op_with("load", "text", text))?;
        Ok(r.get("version").and_then(Json::as_int).unwrap_or(0) as u64)
    }

    /// Stages inserts from a facts-only source text; returns the staged
    /// operation count.
    pub fn insert(&mut self, facts: &str) -> io::Result<u64> {
        let r = self.request_ok(&Self::op_with("insert", "facts", facts))?;
        Ok(r.get("staged").and_then(Json::as_int).unwrap_or(0) as u64)
    }

    /// Stages retracts; returns the staged operation count.
    pub fn retract(&mut self, facts: &str) -> io::Result<u64> {
        let r = self.request_ok(&Self::op_with("retract", "facts", facts))?;
        Ok(r.get("staged").and_then(Json::as_int).unwrap_or(0) as u64)
    }

    /// Commits the staged batch; returns the full response object
    /// (version + maintenance counters). On `Err` the staged batch is
    /// still intact server-side.
    pub fn commit(&mut self) -> io::Result<Json> {
        self.request_ok(&Self::op("commit"))
    }

    /// Discards the staged batch.
    pub fn abort(&mut self) -> io::Result<()> {
        self.request_ok(&Self::op("abort")).map(|_| ())
    }

    /// Runs a query against the session's pinned view; returns the
    /// answer rows as display strings.
    pub fn query(&mut self, goal: &str) -> io::Result<Vec<String>> {
        let r = self.request_ok(&Self::op_with("query", "goal", goal))?;
        Ok(r.get("rows")
            .and_then(Json::as_arr)
            .map(|rows| {
                rows.iter()
                    .filter_map(Json::as_str)
                    .map(str::to_string)
                    .collect()
            })
            .unwrap_or_default())
    }

    /// Re-pins the session to the latest committed version.
    pub fn refresh(&mut self) -> io::Result<u64> {
        let r = self.request_ok(&Self::op("refresh"))?;
        Ok(r.get("version").and_then(Json::as_int).unwrap_or(0) as u64)
    }

    /// Digest of the pinned view, as `(version, hex digest)`.
    pub fn digest(&mut self) -> io::Result<(u64, String)> {
        let r = self.request_ok(&Self::op("digest"))?;
        let version = r.get("version").and_then(Json::as_int).unwrap_or(0) as u64;
        let digest = r
            .get("digest")
            .and_then(Json::as_str)
            .ok_or_else(|| proto_err("digest response without digest"))?
            .to_string();
        Ok((version, digest))
    }

    /// Server statistics (version, counters, role, replication lag on
    /// replicas), as the raw response object.
    pub fn stats(&mut self) -> io::Result<Json> {
        self.request_ok(&Self::op("stats"))
    }

    /// Fetches the replication feed from `(epoch, since)` without
    /// waiting (the `wal_since` op); returns the raw feed object for
    /// [`crate::replicate::feed_from_json`].
    pub fn wal_since(&mut self, epoch: &str, since: u64, max: u64) -> io::Result<Json> {
        self.request_ok(&Json::obj(vec![
            ("op", Json::str("wal_since")),
            ("epoch", Json::str(epoch)),
            ("since", Json::int(since as i64)),
            ("max", Json::int(max as i64)),
        ]))
    }

    /// Long-polls the replication feed: the server holds the request
    /// open up to `wait_ms` for a commit past `since`.
    pub fn subscribe(
        &mut self,
        epoch: &str,
        since: u64,
        max: u64,
        wait_ms: u64,
    ) -> io::Result<Json> {
        self.request_ok(&Json::obj(vec![
            ("op", Json::str("subscribe")),
            ("epoch", Json::str(epoch)),
            ("since", Json::int(since as i64)),
            ("max", Json::int(max as i64)),
            ("wait_ms", Json::int(wait_ms as i64)),
        ]))
    }

    /// Forces a server-side snapshot.
    pub fn snapshot(&mut self) -> io::Result<()> {
        self.request_ok(&Self::op("snapshot")).map(|_| ())
    }

    /// Asks the server to exit its accept loop.
    pub fn shutdown(&mut self) -> io::Result<()> {
        self.request_ok(&Self::op("shutdown")).map(|_| ())
    }
}
