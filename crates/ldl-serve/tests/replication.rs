//! End-to-end replication tests, in-process: a primary `Server` on a
//! loopback socket, a replica `Service` driven by the real
//! `replicate::run` loop over the real wire protocol.

use ldl_serve::replicate;
use ldl_serve::service::ServiceOptions;
use ldl_serve::{Client, FixpointConfig, Json, Listener, Server, Service};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

const RULES: &str = "tc(X, Y) <- e(X, Y).\ntc(X, Y) <- e(X, Z), tc(Z, Y).";

fn tmpdir(name: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("ldl-repl-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

/// Starts a primary server over loopback TCP with the given options;
/// returns its service handle, its address, and the join handle.
fn start_primary(
    dir: &Path,
    opts: ServiceOptions,
) -> (Arc<Service>, String, thread::JoinHandle<()>) {
    let service =
        Arc::new(Service::open_with(dir, &FixpointConfig::serial(), opts).expect("primary open"));
    let listener = Listener::bind("127.0.0.1:0").expect("bind");
    let addr = listener
        .describe()
        .strip_prefix("tcp://")
        .expect("tcp addr")
        .to_string();
    let server = Server::new(service.clone(), listener).with_admin(true);
    let handle = thread::spawn(move || server.run().expect("server run"));
    (service, addr, handle)
}

/// Opens a replica of `addr` in `dir` and spawns its runner thread.
fn start_replica(
    dir: &Path,
    addr: &str,
    stop: &Arc<AtomicBool>,
) -> (Arc<Service>, thread::JoinHandle<()>) {
    let service = Arc::new(
        Service::open_with(
            dir,
            &FixpointConfig::serial(),
            ServiceOptions::replica(0, addr),
        )
        .expect("replica open"),
    );
    let runner = replicate::spawn(service.clone(), stop.clone());
    (service, runner)
}

fn await_version(service: &Service, version: u64, why: &str) {
    let deadline = Instant::now() + Duration::from_secs(20);
    while service.version() != version {
        assert!(
            Instant::now() < deadline,
            "{why}: stuck at {} wanting {version}",
            service.version()
        );
        thread::sleep(Duration::from_millis(10));
    }
}

#[test]
fn replica_bootstraps_catches_up_and_redirects_writes() {
    let stop = Arc::new(AtomicBool::new(false));
    let (primary, addr, _server) = start_primary(&tmpdir("track-p"), ServiceOptions::new(0));
    // Commits landed before the replica exists force the bootstrap path
    // for some, the records path for the rest.
    let mut c = Client::connect(&addr).unwrap();
    c.load(RULES).unwrap();
    c.insert("e(1, 2). e(2, 3).").unwrap();
    c.commit().unwrap();

    let (replica, runner) = start_replica(&tmpdir("track-r"), &addr, &stop);
    await_version(&replica, primary.version(), "initial catch-up");
    assert_eq!(replica.position(), primary.position(), "epoch adopted");
    assert_eq!(replica.current().digest(), primary.current().digest());
    let status = replica.replication_status();
    assert!(status.connected);
    assert_eq!(status.bootstraps, 1, "fresh replica bootstraps once");

    // Live commits stream through subscribe and apply bit-for-bit.
    for i in 3..=12u64 {
        c.insert(&format!("e({i}, {}).", i + 1)).unwrap();
        c.commit().unwrap();
    }
    await_version(&replica, primary.version(), "live streaming");
    assert_eq!(replica.current().digest(), primary.current().digest());
    let status = replica.replication_status();
    assert_eq!(status.primary_head, primary.version());
    assert_eq!(status.behind_bytes, 0);

    // The replica's own sessions read at full fidelity...
    let q = ldl_core::parser::parse_query("tc(1, Y)?").unwrap();
    assert_eq!(
        replica.current().answers(&q).len(),
        primary.current().answers(&q).len()
    );
    // ...but its writes are refused with a redirect to the primary.
    let mut d = ldl_serve::EdbDelta::new();
    d.insert(
        ldl_core::Pred::new("e", 2),
        ldl_storage::Tuple::ints(&[99, 100]),
    );
    let err = replica.commit(&d).unwrap_err().to_string();
    assert!(err.contains("read-only replica"), "{err}");
    assert!(err.contains(&addr), "{err}");

    stop.store(true, Ordering::Relaxed);
    runner.join().unwrap();
}

#[test]
fn replica_rebootstraps_when_the_feed_window_evicted_its_position() {
    let stop = Arc::new(AtomicBool::new(false));
    // A tiny retention window: anything more than 2 commits behind can
    // only be served a bootstrap image.
    let (primary, addr, _server) = start_primary(
        &tmpdir("evict-p"),
        ServiceOptions {
            feed_retain: 2,
            ..ServiceOptions::new(0)
        },
    );
    let mut c = Client::connect(&addr).unwrap();
    c.load(RULES).unwrap();

    let (replica, runner) = start_replica(&tmpdir("evict-r"), &addr, &stop);
    await_version(&replica, primary.version(), "first bootstrap");
    assert_eq!(replica.replication_status().bootstraps, 1);

    // Stop the runner, let the primary race far past the window, then
    // reconnect: the replica's position is evicted → second bootstrap.
    stop.store(true, Ordering::Relaxed);
    runner.join().unwrap();
    for i in 1..=10u64 {
        c.insert(&format!("e({i}, {}).", i + 1)).unwrap();
        c.commit().unwrap();
    }
    stop.store(false, Ordering::Relaxed);
    let runner = replicate::spawn(replica.clone(), stop.clone());
    await_version(&replica, primary.version(), "re-bootstrap");
    assert_eq!(replica.current().digest(), primary.current().digest());
    assert_eq!(
        replica.replication_status().bootstraps,
        2,
        "an evicted position must be served a fresh image"
    );

    stop.store(true, Ordering::Relaxed);
    runner.join().unwrap();
}

#[test]
fn subscribe_long_polls_until_a_commit_lands() {
    let (primary, addr, _server) = start_primary(&tmpdir("longpoll-p"), ServiceOptions::new(0));
    let mut c = Client::connect(&addr).unwrap();
    c.load(RULES).unwrap();
    let head = primary.version();
    let epoch = replicate::encode_epoch(primary.epoch());

    // At the head with nothing coming: the poll times out up_to_date.
    let mut poller = Client::connect(&addr).unwrap();
    let resp = poller.subscribe(&epoch, head, 16, 50).unwrap();
    assert_eq!(
        resp.get("status").and_then(Json::as_str),
        Some("up_to_date")
    );

    // A commit lands while the poll is parked: it returns the record
    // well before the 10s window expires.
    let committer = thread::spawn(move || {
        thread::sleep(Duration::from_millis(100));
        c.insert("e(1, 2).").unwrap();
        c.commit().unwrap();
    });
    let started = Instant::now();
    let resp = poller.subscribe(&epoch, head, 16, 10_000).unwrap();
    committer.join().unwrap();
    assert_eq!(resp.get("status").and_then(Json::as_str), Some("records"));
    assert!(
        started.elapsed() < Duration::from_secs(8),
        "long-poll should wake on publish, not sleep out its window"
    );
    match replicate::feed_from_json(&resp).unwrap() {
        replicate::FeedResponse::Records { records, .. } => {
            assert_eq!(records.len(), 1);
            assert_eq!(records[0].0, head + 1);
        }
        other => panic!("expected records, got {other:?}"),
    }
}

#[test]
fn feed_survives_primary_snapshots_within_the_window() {
    let stop = Arc::new(AtomicBool::new(false));
    // Snapshot every 3 records: the primary's WAL file is reset
    // mid-stream, but the in-memory feed keeps shipping.
    let (primary, addr, _server) = start_primary(&tmpdir("snapfeed-p"), ServiceOptions::new(3));
    let mut c = Client::connect(&addr).unwrap();
    c.load(RULES).unwrap();

    let (replica, runner) = start_replica(&tmpdir("snapfeed-r"), &addr, &stop);
    await_version(&replica, primary.version(), "bootstrap");
    for i in 1..=10u64 {
        c.insert(&format!("e({i}, {}).", i + 1)).unwrap();
        c.commit().unwrap();
    }
    await_version(&replica, primary.version(), "streaming across snapshots");
    assert_eq!(replica.current().digest(), primary.current().digest());
    assert_eq!(
        replica.replication_status().bootstraps,
        1,
        "snapshot-triggered WAL resets must not force re-bootstraps"
    );

    stop.store(true, Ordering::Relaxed);
    runner.join().unwrap();
}
