//! End-to-end wire tests: a real `Server` on a loopback socket, driven
//! by `Client` sessions.

use ldl_serve::{Client, FixpointConfig, Json, Listener, Server, Service};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::thread;

fn tmpdir(name: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("ldl-wire-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

/// Starts a server on an ephemeral TCP port; returns its address and
/// the join handle (the server exits on `shutdown` — these tests opt
/// in to remote admin; the TCP default refuses it).
fn start(dir: &Path) -> (String, thread::JoinHandle<()>) {
    let service = Arc::new(Service::open(dir, &FixpointConfig::serial(), 0).expect("service open"));
    let listener = Listener::bind("127.0.0.1:0").expect("bind");
    let addr = listener
        .describe()
        .strip_prefix("tcp://")
        .expect("tcp addr")
        .to_string();
    let server = Server::new(service, listener).with_admin(true);
    let handle = thread::spawn(move || {
        server.run().expect("server run");
    });
    (addr, handle)
}

const RULES: &str = "tc(X, Y) <- e(X, Y).\ntc(X, Y) <- e(X, Z), tc(Z, Y).";

#[test]
fn full_session_and_restart_preserves_digest() {
    let dir = tmpdir("session");
    let (addr, handle) = start(&dir);

    let mut c = Client::connect(&addr).unwrap();
    assert_eq!(c.hello().unwrap(), 0);
    c.load(RULES).unwrap();
    c.insert("e(1, 2). e(2, 3).").unwrap();
    let commit = c.commit().unwrap();
    assert_eq!(commit.get("base_inserted").and_then(Json::as_int), Some(2));
    let rows = c.query("tc(1, Y)?").unwrap();
    assert_eq!(rows, vec!["(1, 2)", "(1, 3)"]);
    let (v1, digest1) = c.digest().unwrap();
    assert_eq!(v1, 2);
    c.shutdown().unwrap();
    handle.join().unwrap();

    // Restart over the same data directory: recovery replays the WAL.
    let (addr, handle) = start(&dir);
    let mut c = Client::connect(&addr).unwrap();
    assert_eq!(c.hello().unwrap(), 2);
    let (v2, digest2) = c.digest().unwrap();
    assert_eq!((v2, digest2), (v1, digest1));
    assert_eq!(c.query("tc(1, Y)?").unwrap(), vec!["(1, 2)", "(1, 3)"]);
    c.shutdown().unwrap();
    handle.join().unwrap();
}

#[test]
fn sessions_are_snapshot_isolated_until_refresh() {
    let dir = tmpdir("isolation");
    let (addr, handle) = start(&dir);

    let mut writer = Client::connect(&addr).unwrap();
    writer.load(RULES).unwrap();
    writer.insert("e(1, 2).").unwrap();
    writer.commit().unwrap();

    // The reader pins the version at its first interaction.
    let mut reader = Client::connect(&addr).unwrap();
    reader.hello().unwrap();
    assert_eq!(reader.query("tc(1, Y)?").unwrap().len(), 1);

    writer.insert("e(2, 3).").unwrap();
    writer.commit().unwrap();

    // Still the pinned view...
    assert_eq!(reader.query("tc(1, Y)?").unwrap().len(), 1);
    // ...until an explicit refresh.
    reader.refresh().unwrap();
    assert_eq!(reader.query("tc(1, Y)?").unwrap().len(), 2);

    writer.shutdown().unwrap();
    handle.join().unwrap();
}

#[test]
fn failed_commit_preserves_staged_batch_on_server() {
    let dir = tmpdir("failed-commit");
    let (addr, handle) = start(&dir);

    let mut c = Client::connect(&addr).unwrap();
    c.load(RULES).unwrap();
    // Stage a good fact and a write to a derived predicate: the commit
    // must be refused as a whole and the batch kept.
    c.insert("e(1, 2).").unwrap();
    c.insert("tc(5, 6).").unwrap();
    let e = c.commit().unwrap_err();
    assert!(e.to_string().contains("derived predicate"), "{e}");
    assert!(e.to_string().contains("staged batch preserved"), "{e}");

    let pending = c
        .request_ok(&Json::obj(vec![("op", Json::str("pending"))]))
        .unwrap();
    assert_eq!(pending.get("staged").and_then(Json::as_int), Some(2));

    // Nothing was committed.
    assert_eq!(c.query("tc(1, Y)?").unwrap().len(), 0);

    // Abort, restage only the good fact, and commit cleanly.
    c.abort().unwrap();
    c.insert("e(1, 2).").unwrap();
    c.commit().unwrap();
    c.refresh().unwrap();
    assert_eq!(c.query("tc(1, Y)?").unwrap().len(), 1);

    c.shutdown().unwrap();
    handle.join().unwrap();
}

#[test]
fn concurrent_commit_storm_serializes() {
    let dir = tmpdir("storm");
    let (addr, handle) = start(&dir);

    let mut setup = Client::connect(&addr).unwrap();
    setup.load(RULES).unwrap();

    let workers: Vec<_> = (0..4)
        .map(|w| {
            let addr = addr.clone();
            thread::spawn(move || {
                let mut c = Client::connect(&addr).expect("connect");
                for i in 0..5 {
                    let a = 10 * w + i;
                    c.insert(&format!("e({a}, {}).", a + 1)).expect("insert");
                    c.commit().expect("commit");
                }
            })
        })
        .collect();
    for w in workers {
        w.join().unwrap();
    }

    setup.refresh().unwrap();
    // 1 load + 20 commits, every one acknowledged exactly once.
    assert_eq!(setup.hello().unwrap(), 21);
    assert_eq!(setup.query("e(X, Y)?").unwrap().len(), 20);
    let (_, digest_live) = setup.digest().unwrap();
    setup.shutdown().unwrap();
    handle.join().unwrap();

    // Recovery agrees bit-for-bit with the live state.
    let (addr, handle) = start(&dir);
    let mut c = Client::connect(&addr).unwrap();
    let (v, digest) = c.digest().unwrap();
    assert_eq!(v, 21);
    assert_eq!(digest, digest_live);
    c.shutdown().unwrap();
    handle.join().unwrap();
}

#[test]
fn unix_socket_transport_works() {
    let dir = tmpdir("unix");
    std::fs::create_dir_all(&dir).unwrap();
    let sock = dir.join("ldl.sock");
    let service = Arc::new(
        Service::open(&dir.join("data"), &FixpointConfig::serial(), 0).expect("service open"),
    );
    let listener = Listener::bind(sock.to_str().unwrap()).expect("bind unix");
    let server = Server::new(service, listener);
    let handle = thread::spawn(move || server.run().expect("server run"));

    let mut c = Client::connect(sock.to_str().unwrap()).unwrap();
    c.load("p(X) <- e(X).").unwrap();
    c.insert("e(7).").unwrap();
    c.commit().unwrap();
    assert_eq!(c.query("p(X)?").unwrap(), vec!["(7)"]);
    c.shutdown().unwrap();
    handle.join().unwrap();
    // The socket file is unlinked when the listener drops.
    assert!(!sock.exists());
}

#[test]
fn tcp_refuses_admin_ops_by_default() {
    let dir = tmpdir("admin-default");
    let service =
        Arc::new(Service::open(&dir, &FixpointConfig::serial(), 0).expect("service open"));
    let listener = Listener::bind("127.0.0.1:0").expect("bind");
    let addr = listener
        .describe()
        .strip_prefix("tcp://")
        .expect("tcp addr")
        .to_string();
    // Plain Server::new: the TCP default keeps admin ops off.
    let server = Server::new(service, listener);
    let _handle = thread::spawn(move || server.run());

    let mut c = Client::connect(&addr).unwrap();
    // Ordinary traffic is unaffected...
    c.load("p(X) <- e(X).").unwrap();
    c.insert("e(7).").unwrap();
    c.commit().unwrap();
    assert_eq!(c.query("p(X)?").unwrap(), vec!["(7)"]);
    // ...but shutdown and snapshot are refused with a pointer to the
    // flag, and the server keeps serving afterwards.
    for op in ["shutdown", "snapshot"] {
        let e = c
            .request_ok(&Json::obj(vec![("op", Json::str(op))]))
            .unwrap_err()
            .to_string();
        assert!(e.contains("not allowed"), "{op}: {e}");
        assert!(e.contains("--allow-remote-admin"), "{op}: {e}");
    }
    assert_eq!(c.query("p(X)?").unwrap(), vec!["(7)"]);
    // The accept-loop thread leaks by design here: refusing shutdown is
    // exactly what this test asserts.
}

#[test]
fn load_returns_structured_diagnostics() {
    let dir = tmpdir("diagnostics");
    let (addr, handle) = start(&dir);
    let mut c = Client::connect(&addr).unwrap();

    // Commit base facts first so the analyzer sees the stored EDB.
    c.load("tc(X, Y) <- e(X, Y).").unwrap();
    c.insert("e(1, 2). e(2, 3).").unwrap();
    c.commit().unwrap();

    // An unstratified program is rejected before it reaches the
    // service, with the analyzer's structured diagnostics on the wire.
    let bad = Json::obj(vec![
        ("op", Json::str("load")),
        ("text", Json::str("p(X) <- e(X, _Y), ~p(X).")),
    ]);
    let resp = c.request(&bad).unwrap();
    assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(false));
    let diags = resp
        .get("diagnostics")
        .and_then(Json::as_arr)
        .expect("diagnostics array");
    assert!(!diags.is_empty());
    let codes: Vec<&str> = diags
        .iter()
        .filter_map(|d| d.get("code").and_then(Json::as_str))
        .collect();
    assert!(codes.iter().any(|c| c.starts_with("LDL0")), "{codes:?}");
    let first = &diags[0];
    assert!(first.get("severity").and_then(Json::as_str).is_some());
    assert!(first.get("line").and_then(Json::as_int).is_some());
    assert!(first.get("message").and_then(Json::as_str).is_some());
    // The rule base is unchanged: the old rules still answer.
    assert_eq!(c.query("tc(1, Y)?").unwrap(), vec!["(1, 2)"]);

    // A parse failure surfaces as a single LDL000 diagnostic.
    let unparsable = Json::obj(vec![
        ("op", Json::str("load")),
        ("text", Json::str("p(X <- q(X).")),
    ]);
    let resp = c.request(&unparsable).unwrap();
    assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(false));
    let diags = resp.get("diagnostics").and_then(Json::as_arr).unwrap();
    assert_eq!(diags.len(), 1);
    assert_eq!(diags[0].get("code").and_then(Json::as_str), Some("LDL000"));

    // A semantically suspicious (but loadable) program carries its
    // LDL2xx warnings on the success response: `never` joins `e`
    // against a column value the stored relation cannot hold.
    let warn = Json::obj(vec![
        ("op", Json::str("load")),
        (
            "text",
            Json::str("tc(X, Y) <- e(X, Y).\nnever(X) <- e(X, Y), Y = none."),
        ),
    ]);
    let resp = c.request(&warn).unwrap();
    assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(true));
    let diags = resp
        .get("diagnostics")
        .and_then(Json::as_arr)
        .expect("warning diagnostics");
    let codes: Vec<&str> = diags
        .iter()
        .filter_map(|d| d.get("code").and_then(Json::as_str))
        .collect();
    assert!(codes.iter().any(|c| c.starts_with("LDL2")), "{codes:?}");

    c.shutdown().unwrap();
    handle.join().unwrap();
}
