//! Binary codec for durable storage: terms, tuples, relations, and whole
//! databases, plus the length+checksum *frame* format shared by the WAL
//! and snapshot files of `ldl-serve`.
//!
//! Layout conventions (all integers little-endian):
//!
//! * string  = `u32` byte length, then UTF-8 bytes;
//! * term    = tag byte — `0` Int(`i64`), `1` Sym(string),
//!   `2` Compound(string functor, `u32` argc, args), `3` Var(string);
//! * tuple   = `u32` arity, then terms;
//! * relation = `u32` arity, `u64` row count, then tuples in insertion
//!   order (so a decode reproduces the canonical order bit-for-bit);
//! * database = `u32` relation count, then per relation: name string,
//!   `u32` arity, relation payload. Relations are emitted in sorted
//!   predicate order; synthetic stats overrides are *not* persisted.
//! * frame   = `u32` payload length, `u32` CRC-32 of the payload, then
//!   the payload bytes. A torn tail (short header, short payload, or a
//!   checksum mismatch) is reported as [`Frame::Torn`], never as data.

use crate::catalog::Database;
use crate::relation::Relation;
use crate::tuple::Tuple;
use ldl_core::{LdlError, Pred, Result, Symbol, Term, Value};
use std::io::{self, Read, Write};

/// Upper bound on a single frame payload (1 GiB). A length field above
/// this is treated as corruption (torn/garbage tail), not an allocation
/// request.
pub const MAX_FRAME_LEN: u32 = 1 << 30;

// ---------------------------------------------------------------------------
// CRC-32 (IEEE 802.3 polynomial, reflected: 0xEDB88320)
// ---------------------------------------------------------------------------

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC32_TABLE: [u32; 256] = crc32_table();

/// CRC-32 checksum of `bytes` (IEEE, as used by zip/png).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC32_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

// ---------------------------------------------------------------------------
// Primitive encoders / decoders
// ---------------------------------------------------------------------------

/// Appends a `u32` in little-endian order.
pub fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Appends a `u64` in little-endian order.
pub fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Appends an `i64` in little-endian order.
pub fn put_i64(buf: &mut Vec<u8>, v: i64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Appends a length-prefixed UTF-8 string.
pub fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u32(buf, s.len() as u32);
    buf.extend_from_slice(s.as_bytes());
}

/// A cursor over an encoded byte slice. Every read checks bounds and
/// reports overruns as [`LdlError::Eval`] ("codec: ...") rather than
/// panicking, so corrupt files surface as errors.
pub struct Decoder<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    /// Cursor at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Decoder<'a> {
        Decoder { buf, pos: 0 }
    }

    /// True when every byte has been consumed.
    pub fn is_at_end(&self) -> bool {
        self.pos == self.buf.len()
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.buf.len());
        match end {
            Some(end) => {
                let s = &self.buf[self.pos..end];
                self.pos = end;
                Ok(s)
            }
            None => Err(LdlError::Eval(format!(
                "codec: truncated input (wanted {n} bytes at offset {}, have {})",
                self.pos,
                self.buf.len() - self.pos
            ))),
        }
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Reads a little-endian `i64`.
    pub fn i64(&mut self) -> Result<i64> {
        let b = self.take(8)?;
        Ok(i64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String> {
        let n = self.u32()? as usize;
        let b = self.take(n)?;
        String::from_utf8(b.to_vec())
            .map_err(|_| LdlError::Eval("codec: invalid UTF-8 in string".into()))
    }
}

// ---------------------------------------------------------------------------
// Term / Tuple / Relation / Database
// ---------------------------------------------------------------------------

const TAG_INT: u8 = 0;
const TAG_SYM: u8 = 1;
const TAG_COMPOUND: u8 = 2;
const TAG_VAR: u8 = 3;

/// Encodes one term.
pub fn put_term(buf: &mut Vec<u8>, t: &Term) {
    match t {
        Term::Const(Value::Int(i)) => {
            buf.push(TAG_INT);
            put_i64(buf, *i);
        }
        Term::Const(Value::Sym(s)) => {
            buf.push(TAG_SYM);
            put_str(buf, s.as_str());
        }
        Term::Compound(f, args) => {
            buf.push(TAG_COMPOUND);
            put_str(buf, f.as_str());
            put_u32(buf, args.len() as u32);
            for a in args {
                put_term(buf, a);
            }
        }
        Term::Var(v) => {
            buf.push(TAG_VAR);
            put_str(buf, v.as_str());
        }
    }
}

/// Decodes one term.
pub fn get_term(d: &mut Decoder<'_>) -> Result<Term> {
    let tag = d.take(1)?[0];
    match tag {
        TAG_INT => Ok(Term::Const(Value::Int(d.i64()?))),
        TAG_SYM => Ok(Term::Const(Value::Sym(Symbol::intern(&d.str()?)))),
        TAG_COMPOUND => {
            let f = Symbol::intern(&d.str()?);
            let n = d.u32()? as usize;
            let mut args = Vec::with_capacity(n.min(64));
            for _ in 0..n {
                args.push(get_term(d)?);
            }
            Ok(Term::Compound(f, args))
        }
        TAG_VAR => Ok(Term::Var(Symbol::intern(&d.str()?))),
        other => Err(LdlError::Eval(format!("codec: unknown term tag {other}"))),
    }
}

/// Encodes one tuple.
pub fn put_tuple(buf: &mut Vec<u8>, t: &Tuple) {
    put_u32(buf, t.arity() as u32);
    for c in &t.0 {
        put_term(buf, c);
    }
}

/// Decodes one tuple.
pub fn get_tuple(d: &mut Decoder<'_>) -> Result<Tuple> {
    let n = d.u32()? as usize;
    let mut items = Vec::with_capacity(n.min(64));
    for _ in 0..n {
        items.push(get_term(d)?);
    }
    Ok(Tuple(items))
}

/// Encodes a relation (arity, row count, rows in insertion order).
pub fn put_relation(buf: &mut Vec<u8>, r: &Relation) {
    put_u32(buf, r.arity() as u32);
    put_u64(buf, r.len() as u64);
    for t in r.rows() {
        put_tuple(buf, t);
    }
}

/// Decodes a relation, preserving row order.
pub fn get_relation(d: &mut Decoder<'_>) -> Result<Relation> {
    let arity = d.u32()? as usize;
    let len = d.u64()? as usize;
    let mut r = Relation::new(arity);
    for _ in 0..len {
        let t = get_tuple(d)?;
        if t.arity() != arity {
            return Err(LdlError::Eval(format!(
                "codec: tuple arity {} in relation of arity {arity}",
                t.arity()
            )));
        }
        r.insert(t);
    }
    Ok(r)
}

/// Encodes a database: its base relations in sorted predicate order.
/// Synthetic stats overrides are in-memory experiment scaffolding and
/// are not persisted.
pub fn encode_database(db: &Database) -> Vec<u8> {
    let mut preds: Vec<Pred> = db
        .preds()
        .into_iter()
        .filter(|p| db.relation(*p).is_some())
        .collect();
    preds.sort();
    let mut buf = Vec::new();
    put_u32(&mut buf, preds.len() as u32);
    for p in preds {
        put_str(&mut buf, p.name.as_str());
        put_u32(&mut buf, p.arity as u32);
        put_relation(&mut buf, db.relation(p).expect("filtered above"));
    }
    buf
}

/// Decodes a database produced by [`encode_database`].
pub fn decode_database(buf: &[u8]) -> Result<Database> {
    let mut d = Decoder::new(buf);
    let db = get_database(&mut d)?;
    if !d.is_at_end() {
        return Err(LdlError::Eval(
            "codec: trailing bytes after database payload".into(),
        ));
    }
    Ok(db)
}

/// Decodes a database from a cursor (for embedding in larger payloads).
pub fn get_database(d: &mut Decoder<'_>) -> Result<Database> {
    let n = d.u32()? as usize;
    let mut db = Database::new();
    for _ in 0..n {
        let name = d.str()?;
        let arity = d.u32()? as usize;
        let rel = get_relation(d)?;
        if rel.arity() != arity {
            return Err(LdlError::Eval(format!(
                "codec: relation arity {} under predicate {name}/{arity}",
                rel.arity()
            )));
        }
        db.set_relation(Pred::new(&name, arity), rel);
    }
    Ok(db)
}

// ---------------------------------------------------------------------------
// Frames
// ---------------------------------------------------------------------------

/// Result of reading one frame from a stream.
#[derive(Debug)]
pub enum Frame {
    /// A complete frame whose checksum verified.
    Payload(Vec<u8>),
    /// Clean end of stream: zero bytes remained.
    Eof,
    /// A torn or corrupt tail: a partial header, a payload shorter than
    /// its declared length, an implausible length, or a checksum
    /// mismatch. Recovery should truncate the file here and stop.
    Torn,
}

/// Writes one `[len][crc32][payload]` frame. Does not flush or sync;
/// the caller owns durability.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    let mut header = [0u8; 8];
    header[..4].copy_from_slice(&(payload.len() as u32).to_le_bytes());
    header[4..].copy_from_slice(&crc32(payload).to_le_bytes());
    w.write_all(&header)?;
    w.write_all(payload)
}

/// Reads as many bytes as the stream will give, returning the count
/// (short only at end of stream).
fn read_fully(r: &mut impl Read, buf: &mut [u8]) -> io::Result<usize> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => break,
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    Ok(filled)
}

/// Reads the next frame, distinguishing clean EOF from a torn tail.
pub fn read_frame(r: &mut impl Read) -> io::Result<Frame> {
    let mut header = [0u8; 8];
    let got = read_fully(r, &mut header)?;
    if got == 0 {
        return Ok(Frame::Eof);
    }
    if got < 8 {
        return Ok(Frame::Torn);
    }
    let len = u32::from_le_bytes([header[0], header[1], header[2], header[3]]);
    let want_crc = u32::from_le_bytes([header[4], header[5], header[6], header[7]]);
    if len > MAX_FRAME_LEN {
        return Ok(Frame::Torn);
    }
    // The length field is untrusted until the checksum verifies: read in
    // bounded chunks so a corrupt header claiming a huge payload over a
    // short (torn) tail never allocates the claimed size up front.
    const CHUNK: usize = 64 * 1024;
    let mut payload = Vec::with_capacity((len as usize).min(CHUNK));
    let mut chunk = [0u8; CHUNK];
    let mut remaining = len as usize;
    while remaining > 0 {
        let want = remaining.min(CHUNK);
        let got = read_fully(r, &mut chunk[..want])?;
        payload.extend_from_slice(&chunk[..got]);
        if got < want {
            return Ok(Frame::Torn);
        }
        remaining -= got;
    }
    if crc32(&payload) != want_crc {
        return Ok(Frame::Torn);
    }
    Ok(Frame::Payload(payload))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_term(t: Term) {
        let mut buf = Vec::new();
        put_term(&mut buf, &t);
        let mut d = Decoder::new(&buf);
        assert_eq!(get_term(&mut d).unwrap(), t);
        assert!(d.is_at_end());
    }

    #[test]
    fn crc32_known_vector() {
        // "123456789" -> 0xCBF43926 is the canonical CRC-32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn terms_roundtrip() {
        roundtrip_term(Term::int(-42));
        roundtrip_term(Term::sym("tom"));
        roundtrip_term(Term::var("X"));
        roundtrip_term(Term::compound(
            "wheel",
            vec![
                Term::int(32),
                Term::list(vec![Term::sym("a"), Term::int(7)]),
            ],
        ));
    }

    #[test]
    fn database_roundtrips_bit_for_bit() {
        let p = ldl_core::parser::parse_program(
            r#"
            e(1, 2). e(2, 3). e(3, 1).
            part(bike, wheel(front)). part(bike, wheel(rear)).
            tag(x, [1, 2, 3]).
            "#,
        )
        .unwrap();
        let db = Database::from_program(&p);
        let bytes = encode_database(&db);
        let back = decode_database(&bytes).unwrap();
        assert_eq!(db.preds(), back.preds());
        for pred in db.preds() {
            let a = db.relation(pred).unwrap();
            let b = back.relation(pred).unwrap();
            assert_eq!(a.rows(), b.rows(), "rows differ for {pred}");
        }
        // Deterministic encoding: re-encoding the decoded database is
        // byte-identical.
        assert_eq!(bytes, encode_database(&back));
    }

    #[test]
    fn decode_rejects_truncation_and_bad_tags() {
        let mut buf = Vec::new();
        put_term(&mut buf, &Term::compound("f", vec![Term::int(1)]));
        for cut in 0..buf.len() {
            assert!(
                get_term(&mut Decoder::new(&buf[..cut])).is_err(),
                "cut at {cut} should fail"
            );
        }
        let bad = [9u8, 0, 0, 0];
        assert!(get_term(&mut Decoder::new(&bad)).is_err());
    }

    #[test]
    fn frames_roundtrip_and_detect_torn_tails() {
        let mut file = Vec::new();
        write_frame(&mut file, b"alpha").unwrap();
        write_frame(&mut file, b"").unwrap();
        write_frame(&mut file, b"beta-beta").unwrap();

        let mut r = io::Cursor::new(&file);
        for want in [&b"alpha"[..], &b""[..], &b"beta-beta"[..]] {
            match read_frame(&mut r).unwrap() {
                Frame::Payload(p) => assert_eq!(p, want),
                other => panic!("expected payload, got {other:?}"),
            }
        }
        assert!(matches!(read_frame(&mut r).unwrap(), Frame::Eof));

        // Torn payload: cut the last frame mid-body.
        let torn = &file[..file.len() - 3];
        let mut r = io::Cursor::new(torn);
        assert!(matches!(read_frame(&mut r).unwrap(), Frame::Payload(_)));
        assert!(matches!(read_frame(&mut r).unwrap(), Frame::Payload(_)));
        assert!(matches!(read_frame(&mut r).unwrap(), Frame::Torn));

        // Torn header: only 3 bytes of the next header present.
        let mut torn2 = file.clone();
        torn2.extend_from_slice(&[1, 0, 0]);
        let mut r = io::Cursor::new(&torn2);
        for _ in 0..3 {
            assert!(matches!(read_frame(&mut r).unwrap(), Frame::Payload(_)));
        }
        assert!(matches!(read_frame(&mut r).unwrap(), Frame::Torn));

        // Bit flip in a payload: checksum catches it.
        let mut flipped = file.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 0x40;
        let mut r = io::Cursor::new(&flipped);
        assert!(matches!(read_frame(&mut r).unwrap(), Frame::Payload(_)));
        assert!(matches!(read_frame(&mut r).unwrap(), Frame::Payload(_)));
        assert!(matches!(read_frame(&mut r).unwrap(), Frame::Torn));
    }

    #[test]
    fn oversized_length_header_is_torn_without_huge_alloc() {
        // A corrupt header declaring a near-maximal payload over a short
        // tail must come back Torn after reading only the bytes that
        // exist — the declared length is never allocated up front.
        let mut file = Vec::new();
        file.extend_from_slice(&(MAX_FRAME_LEN - 1).to_le_bytes());
        file.extend_from_slice(&0xDEAD_BEEFu32.to_le_bytes());
        file.extend_from_slice(b"short tail");
        let mut r = io::Cursor::new(&file);
        assert!(matches!(read_frame(&mut r).unwrap(), Frame::Torn));
        // Above the hard cap: rejected before any payload read.
        let mut file2 = Vec::new();
        file2.extend_from_slice(&(MAX_FRAME_LEN + 1).to_le_bytes());
        file2.extend_from_slice(&0u32.to_le_bytes());
        let mut r2 = io::Cursor::new(&file2);
        assert!(matches!(read_frame(&mut r2).unwrap(), Frame::Torn));
    }
}
