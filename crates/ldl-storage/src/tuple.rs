//! Tuples: rows of ground terms.

use ldl_core::{Term, Value};
use std::fmt;

/// A database row. Every component is a *ground* term — flat values in
/// the relational case, arbitrary complex terms in general (LDL supports
/// hierarchies and lists as first-class data, §1 of the paper).
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Tuple(pub Vec<Term>);

impl Tuple {
    /// Builds a tuple, debug-asserting groundness.
    pub fn new(items: Vec<Term>) -> Tuple {
        debug_assert!(
            items.iter().all(Term::is_ground),
            "tuple components must be ground"
        );
        Tuple(items)
    }

    /// Convenience: a tuple of scalar values.
    pub fn of_values(vals: Vec<Value>) -> Tuple {
        Tuple(vals.into_iter().map(Term::Const).collect())
    }

    /// Convenience: a tuple of integers.
    pub fn ints(vals: &[i64]) -> Tuple {
        Tuple(vals.iter().map(|&i| Term::int(i)).collect())
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.0.len()
    }

    /// Component access.
    pub fn get(&self, i: usize) -> &Term {
        &self.0[i]
    }

    /// Projects the tuple onto the given columns (in the given order).
    pub fn project(&self, cols: &[usize]) -> Tuple {
        Tuple(cols.iter().map(|&c| self.0[c].clone()).collect())
    }

    /// Concatenates two tuples (join output).
    pub fn concat(&self, other: &Tuple) -> Tuple {
        let mut v = Vec::with_capacity(self.0.len() + other.0.len());
        v.extend_from_slice(&self.0);
        v.extend_from_slice(&other.0);
        Tuple(v)
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, t) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, ")")
    }
}

impl From<Vec<Term>> for Tuple {
    fn from(v: Vec<Term>) -> Tuple {
        Tuple::new(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn project_reorders() {
        let t = Tuple::ints(&[10, 20, 30]);
        assert_eq!(t.project(&[2, 0]), Tuple::ints(&[30, 10]));
    }

    #[test]
    fn concat_appends() {
        let a = Tuple::ints(&[1]);
        let b = Tuple::ints(&[2, 3]);
        assert_eq!(a.concat(&b), Tuple::ints(&[1, 2, 3]));
        assert_eq!(a.concat(&b).arity(), 3);
    }

    #[test]
    fn display_format() {
        let t = Tuple(vec![Term::int(1), Term::sym("a")]);
        assert_eq!(t.to_string(), "(1, a)");
    }

    #[test]
    fn complex_terms_allowed() {
        let t = Tuple(vec![Term::compound("wheel", vec![Term::int(32)])]);
        assert_eq!(t.get(0).to_string(), "wheel(32)");
    }
}
