//! Relations: duplicate-free tuple sets with hash and ordered indexes.

use crate::tuple::Tuple;
use ldl_core::Term;
use std::cmp::Ordering;
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering as AtomicOrdering};
use std::sync::{Arc, Mutex};

/// Process-wide index work counters, the observable the index-selection
/// experiments measure: how many index structures were built (per kind)
/// and how many probes they served. Monotone; relative measurement uses
/// [`IndexCounters::scoped`] (isolated from concurrent work) or, for
/// whole-process views, [`IndexCounters::snapshot`] +
/// [`IndexCounters::delta_since`].
pub mod counters {
    use super::{AtomicOrdering, AtomicU64};
    use std::cell::RefCell;
    use std::sync::Arc;

    static HASH_BUILDS: AtomicU64 = AtomicU64::new(0);
    static ORDERED_BUILDS: AtomicU64 = AtomicU64::new(0);
    static HASH_PROBES: AtomicU64 = AtomicU64::new(0);
    static ORDERED_PROBES: AtomicU64 = AtomicU64::new(0);
    static RANGE_PROBES: AtomicU64 = AtomicU64::new(0);
    static ROWS_ENUMERATED: AtomicU64 = AtomicU64::new(0);

    /// Private accumulator of one live [`IndexCounters::scoped`] call.
    /// Atomic because evaluator worker threads enter the scope (via
    /// [`ScopeHandle`]) and bump it concurrently.
    #[derive(Debug, Default)]
    struct ScopeCells {
        hash_builds: AtomicU64,
        ordered_builds: AtomicU64,
        hash_probes: AtomicU64,
        ordered_probes: AtomicU64,
        range_probes: AtomicU64,
        rows_enumerated: AtomicU64,
    }

    thread_local! {
        /// Scopes active on this thread, innermost last.
        static SCOPES: RefCell<Vec<Arc<ScopeCells>>> = const { RefCell::new(Vec::new()) };
    }

    /// Which counter a call site bumps.
    #[derive(Clone, Copy)]
    enum Counter {
        HashBuilds,
        OrderedBuilds,
        HashProbes,
        OrderedProbes,
        RangeProbes,
        RowsEnumerated,
    }

    fn bump(which: Counter, n: u64) {
        let global = match which {
            Counter::HashBuilds => &HASH_BUILDS,
            Counter::OrderedBuilds => &ORDERED_BUILDS,
            Counter::HashProbes => &HASH_PROBES,
            Counter::OrderedProbes => &ORDERED_PROBES,
            Counter::RangeProbes => &RANGE_PROBES,
            Counter::RowsEnumerated => &ROWS_ENUMERATED,
        };
        global.fetch_add(n, AtomicOrdering::Relaxed);
        SCOPES.with(|s| {
            for scope in s.borrow().iter() {
                let cell = match which {
                    Counter::HashBuilds => &scope.hash_builds,
                    Counter::OrderedBuilds => &scope.ordered_builds,
                    Counter::HashProbes => &scope.hash_probes,
                    Counter::OrderedProbes => &scope.ordered_probes,
                    Counter::RangeProbes => &scope.range_probes,
                    Counter::RowsEnumerated => &scope.rows_enumerated,
                };
                cell.fetch_add(n, AtomicOrdering::Relaxed);
            }
        });
    }

    pub(super) fn note_hash_build() {
        bump(Counter::HashBuilds, 1);
    }
    pub(super) fn note_ordered_build() {
        bump(Counter::OrderedBuilds, 1);
    }
    pub(super) fn note_hash_probe() {
        bump(Counter::HashProbes, 1);
    }
    pub(super) fn note_ordered_probe() {
        bump(Counter::OrderedProbes, 1);
    }
    pub(super) fn note_range_probe() {
        bump(Counter::RangeProbes, 1);
    }

    /// Records `n` tuples handed to the evaluator's unification loop by
    /// one access (scan, probe, or range probe). Bumped by the rule
    /// executor at every positive-atom access site — not by the index
    /// structures themselves — so the counter has one crisp meaning:
    /// rows *enumerated* before residual filtering.
    pub fn note_rows_enumerated(n: u64) {
        bump(Counter::RowsEnumerated, n);
    }

    /// The scopes active on the calling thread, packaged so a worker
    /// thread can attribute its counter bumps to the same scopes. The
    /// parallel round executor captures a handle before fanning a round
    /// out and re-enters it inside each job; anyone else spawning
    /// threads under a scope should do the same.
    #[derive(Clone, Debug, Default)]
    pub struct ScopeHandle(Vec<Arc<ScopeCells>>);

    /// Captures the calling thread's active scopes (cheap: `Arc` clones).
    pub fn scope_handle() -> ScopeHandle {
        SCOPES.with(|s| ScopeHandle(s.borrow().clone()))
    }

    impl ScopeHandle {
        /// Makes the handle's scopes active on the current thread until
        /// the guard drops. Scopes already active here are not entered
        /// twice, so re-entering on the capturing thread itself (the
        /// serial path of a worker pool) never double-counts.
        pub fn enter(&self) -> ScopeGuard {
            SCOPES.with(|s| {
                let mut active = s.borrow_mut();
                let mut added = 0;
                for scope in &self.0 {
                    if !active.iter().any(|a| Arc::ptr_eq(a, scope)) {
                        active.push(scope.clone());
                        added += 1;
                    }
                }
                ScopeGuard { added }
            })
        }
    }

    /// RAII guard of [`ScopeHandle::enter`]: leaves the entered scopes
    /// on drop.
    pub struct ScopeGuard {
        added: usize,
    }

    impl Drop for ScopeGuard {
        fn drop(&mut self) {
            SCOPES.with(|s| {
                let mut active = s.borrow_mut();
                let keep = active.len() - self.added;
                active.truncate(keep);
            });
        }
    }

    /// A snapshot of the index work counters.
    #[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
    pub struct IndexCounters {
        /// Hash indexes built ([`super::Relation::index_on`] misses).
        pub hash_builds: u64,
        /// Ordered indexes built ([`super::Relation::ordered_index_on`] misses).
        pub ordered_builds: u64,
        /// Probes served by hash indexes.
        pub hash_probes: u64,
        /// Equality-prefix probes served by ordered indexes.
        pub ordered_probes: u64,
        /// Range probes (bound inequality folded into the access) served
        /// by ordered indexes.
        pub range_probes: u64,
        /// Tuples enumerated by the rule executor across all access
        /// paths (see [`note_rows_enumerated`]).
        pub rows_enumerated: u64,
    }

    impl IndexCounters {
        /// Current counter values.
        pub fn snapshot() -> IndexCounters {
            IndexCounters {
                hash_builds: HASH_BUILDS.load(AtomicOrdering::Relaxed),
                ordered_builds: ORDERED_BUILDS.load(AtomicOrdering::Relaxed),
                hash_probes: HASH_PROBES.load(AtomicOrdering::Relaxed),
                ordered_probes: ORDERED_PROBES.load(AtomicOrdering::Relaxed),
                range_probes: RANGE_PROBES.load(AtomicOrdering::Relaxed),
                rows_enumerated: ROWS_ENUMERATED.load(AtomicOrdering::Relaxed),
            }
        }

        /// Work performed since `self` was snapshot.
        pub fn delta_since(&self) -> IndexCounters {
            let now = IndexCounters::snapshot();
            IndexCounters {
                hash_builds: now.hash_builds - self.hash_builds,
                ordered_builds: now.ordered_builds - self.ordered_builds,
                hash_probes: now.hash_probes - self.hash_probes,
                ordered_probes: now.ordered_probes - self.ordered_probes,
                range_probes: now.range_probes - self.range_probes,
                rows_enumerated: now.rows_enumerated - self.rows_enumerated,
            }
        }

        /// Runs `f` inside a fresh measurement scope and returns its
        /// result together with exactly the index work `f` performed —
        /// on the calling thread and on any evaluator worker threads
        /// (the round executors re-enter the caller's scopes via
        /// [`scope_handle`]). Unlike snapshot/delta pairs, concurrent
        /// work elsewhere in the process (e.g. other tests in the same
        /// binary) cannot pollute the measurement, so exact-delta
        /// assertions no longer need single-process runs. Scopes nest.
        pub fn scoped<R>(f: impl FnOnce() -> R) -> (R, IndexCounters) {
            struct PopOnDrop;
            impl Drop for PopOnDrop {
                fn drop(&mut self) {
                    SCOPES.with(|s| {
                        s.borrow_mut().pop();
                    });
                }
            }
            let cells = Arc::new(ScopeCells::default());
            SCOPES.with(|s| s.borrow_mut().push(cells.clone()));
            let out = {
                let _pop = PopOnDrop;
                f()
            };
            let load = |c: &AtomicU64| c.load(AtomicOrdering::Relaxed);
            let counters = IndexCounters {
                hash_builds: load(&cells.hash_builds),
                ordered_builds: load(&cells.ordered_builds),
                hash_probes: load(&cells.hash_probes),
                ordered_probes: load(&cells.ordered_probes),
                range_probes: load(&cells.range_probes),
                rows_enumerated: load(&cells.rows_enumerated),
            };
            (out, counters)
        }
    }
}

/// A hash index over a snapshot of a relation: maps the values at
/// `key_cols` to the row ids holding them.
///
/// Indexes are immutable snapshots. [`Relation`] caches one per column
/// set and invalidates the cache on insertion, so probes after an update
/// transparently rebuild.
#[derive(Clone, Debug)]
pub struct Index {
    key_cols: Vec<usize>,
    map: HashMap<Vec<Term>, Vec<u32>>,
    /// Relation version this index was built against.
    version: u64,
}

impl Index {
    fn build(rows: &[Tuple], key_cols: &[usize], version: u64) -> Index {
        counters::note_hash_build();
        let mut map: HashMap<Vec<Term>, Vec<u32>> = HashMap::new();
        for (i, t) in rows.iter().enumerate() {
            let key: Vec<Term> = key_cols.iter().map(|&c| t.get(c).clone()).collect();
            map.entry(key).or_default().push(i as u32);
        }
        Index {
            key_cols: key_cols.to_vec(),
            map,
            version,
        }
    }

    /// Row ids whose `key_cols` equal `key`, ascending (insertion order).
    pub fn probe(&self, key: &[Term]) -> &[u32] {
        debug_assert_eq!(key.len(), self.key_cols.len());
        counters::note_hash_probe();
        self.map.get(key).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// Number of distinct keys.
    pub fn distinct_keys(&self) -> usize {
        self.map.len()
    }

    /// The indexed columns.
    pub fn key_cols(&self) -> &[usize] {
        &self.key_cols
    }
}

/// The value-type population of one indexed column, computed when an
/// [`OrderedIndex`] is built. Range folding consults this before turning
/// a bound inequality into a range probe: a probe over a homogeneous
/// `Ints`/`Syms` column with a same-typed constant bound enumerates
/// exactly the rows a post-enumeration filter would keep, and — because
/// no enumerated row can raise an undefined-ordering error — preserves
/// the error behavior of the scan-and-filter path under strict select.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ColClass {
    /// No rows: any fold is trivially sound.
    Empty,
    /// Every value is `Const(Int)`.
    Ints,
    /// Every value is `Const(Sym)`.
    Syms,
    /// Mixed types or structured terms: never fold (the residual filter
    /// must run so undefined orderings surface exactly as on a scan).
    Other,
}

/// An ordered index over a snapshot of a relation: a permutation of the
/// row ids sorted lexicographically by the values at `cols` (ties broken
/// by row id). One ordered index serves *every* bound-column set that is
/// a prefix of `cols` via binary-searched prefix probes — this is what
/// lets a minimum-chain-cover index selection (see the `ldl-index`
/// crate) replace one hash index per search signature with one ordered
/// index per chain.
///
/// Like [`Index`], ordered indexes are immutable snapshots keyed by the
/// relation version and cached by [`Relation::ordered_index_on`].
#[derive(Clone, Debug)]
pub struct OrderedIndex {
    cols: Vec<usize>,
    /// Row ids sorted by (values at `cols`, row id).
    perm: Vec<u32>,
    /// Per-indexed-column value-type population (same length as `cols`).
    classes: Vec<ColClass>,
    /// Relation version this index was built against.
    version: u64,
}

impl OrderedIndex {
    fn build(rows: &[Tuple], cols: &[usize], version: u64) -> OrderedIndex {
        counters::note_ordered_build();
        let mut perm: Vec<u32> = (0..rows.len() as u32).collect();
        perm.sort_unstable_by(|&a, &b| {
            let (ra, rb) = (&rows[a as usize], &rows[b as usize]);
            for &c in cols {
                match ra.get(c).cmp(rb.get(c)) {
                    Ordering::Equal => {}
                    other => return other,
                }
            }
            a.cmp(&b)
        });
        let classes = cols
            .iter()
            .map(|&c| {
                let mut class = ColClass::Empty;
                for t in rows {
                    let this = match t.get(c) {
                        Term::Const(ldl_core::Value::Int(_)) => ColClass::Ints,
                        Term::Const(ldl_core::Value::Sym(_)) => ColClass::Syms,
                        _ => ColClass::Other,
                    };
                    class = match (class, this) {
                        (ColClass::Empty, x) => x,
                        (x, y) if x == y => x,
                        _ => return ColClass::Other,
                    };
                }
                class
            })
            .collect();
        OrderedIndex {
            cols: cols.to_vec(),
            perm,
            classes,
            version,
        }
    }

    /// The indexed column order.
    pub fn cols(&self) -> &[usize] {
        &self.cols
    }

    /// The value-type population of the column at index `depth` of
    /// [`OrderedIndex::cols`].
    pub fn col_class(&self, depth: usize) -> ColClass {
        self.classes[depth]
    }

    /// Compares the first `key.len()` indexed columns of `row` against
    /// `key` lexicographically.
    fn cmp_prefix(&self, row: &Tuple, key: &[Term]) -> Ordering {
        for (&c, k) in self.cols.iter().zip(key) {
            match row.get(c).cmp(k) {
                Ordering::Equal => {}
                other => return other,
            }
        }
        Ordering::Equal
    }

    /// The contiguous run of `perm` whose first `key.len()` indexed
    /// columns equal `key` (binary search, O(log n) comparisons).
    fn equal_run(&self, rows: &[Tuple], key: &[Term]) -> std::ops::Range<usize> {
        debug_assert!(key.len() <= self.cols.len());
        let lo = self
            .perm
            .partition_point(|&rid| self.cmp_prefix(&rows[rid as usize], key) == Ordering::Less);
        let hi = self
            .perm
            .partition_point(|&rid| self.cmp_prefix(&rows[rid as usize], key) != Ordering::Greater);
        lo..hi
    }

    /// Row ids whose first `key.len()` indexed columns equal `key`,
    /// returned **ascending** — the same emission order a hash-index
    /// probe or a full scan yields, which is what keeps the evaluator's
    /// bit-for-bit determinism contract access-path independent.
    pub fn probe_prefix(&self, rows: &[Tuple], key: &[Term]) -> Vec<u32> {
        counters::note_ordered_probe();
        let run = self.equal_run(rows, key);
        let mut out = self.perm[run].to_vec();
        out.sort_unstable();
        debug_assert!(
            out.windows(2).all(|w| w[0] < w[1]),
            "probe_prefix must yield strictly ascending rids"
        );
        out
    }

    /// Range probe with inclusive bounds: row ids whose first
    /// `prefix.len()` indexed columns equal `prefix` and whose *next*
    /// indexed column lies in `[low, high]` (each bound optional).
    /// Returned ascending, like [`OrderedIndex::probe_prefix`].
    pub fn probe_range(
        &self,
        rows: &[Tuple],
        prefix: &[Term],
        low: Option<&Term>,
        high: Option<&Term>,
    ) -> Vec<u32> {
        use std::ops::Bound;
        let lo = low.map_or(Bound::Unbounded, Bound::Included);
        let hi = high.map_or(Bound::Unbounded, Bound::Included);
        self.probe_range_bounds(rows, prefix, lo, hi)
    }

    /// Range probe with explicit open/closed/unbounded ends — the form
    /// the rule executor issues when it folds bound `<,<=,>,>=` builtins
    /// into the access. Row ids come back **ascending** (insertion
    /// order), so the folded stream equals the scan-and-filter stream.
    pub fn probe_range_bounds(
        &self,
        rows: &[Tuple],
        prefix: &[Term],
        low: std::ops::Bound<&Term>,
        high: std::ops::Bound<&Term>,
    ) -> Vec<u32> {
        use std::ops::Bound;
        counters::note_range_probe();
        debug_assert!(prefix.len() < self.cols.len());
        let run = self.equal_run(rows, prefix);
        let next_col = self.cols[prefix.len()];
        let lo = match low {
            Bound::Included(l) => {
                run.start
                    + self.perm[run.clone()]
                        .partition_point(|&rid| rows[rid as usize].get(next_col) < l)
            }
            Bound::Excluded(l) => {
                run.start
                    + self.perm[run.clone()]
                        .partition_point(|&rid| rows[rid as usize].get(next_col) <= l)
            }
            Bound::Unbounded => run.start,
        };
        let hi = match high {
            Bound::Included(h) => {
                run.start
                    + self.perm[run.clone()]
                        .partition_point(|&rid| rows[rid as usize].get(next_col) <= h)
            }
            Bound::Excluded(h) => {
                run.start
                    + self.perm[run.clone()]
                        .partition_point(|&rid| rows[rid as usize].get(next_col) < h)
            }
            Bound::Unbounded => run.end,
        };
        let mut out = self.perm[lo..hi.max(lo)].to_vec();
        out.sort_unstable();
        debug_assert!(
            out.windows(2).all(|w| w[0] < w[1]),
            "probe_range must yield strictly ascending rids"
        );
        out
    }
}

/// A duplicate-free, insertion-ordered set of tuples of fixed arity.
pub struct Relation {
    arity: usize,
    rows: Vec<Tuple>,
    seen: HashMap<Tuple, u32>,
    version: u64,
    /// Lazily built indexes keyed by column set.
    index_cache: Mutex<HashMap<Vec<usize>, Arc<Index>>>,
    /// Lazily built ordered indexes keyed by column order.
    ordered_cache: Mutex<HashMap<Vec<usize>, Arc<OrderedIndex>>>,
}

impl Relation {
    /// Empty relation of the given arity.
    pub fn new(arity: usize) -> Relation {
        Relation {
            arity,
            rows: Vec::new(),
            seen: HashMap::new(),
            version: 0,
            index_cache: Mutex::new(HashMap::new()),
            ordered_cache: Mutex::new(HashMap::new()),
        }
    }

    /// Relation initialized from tuples (duplicates dropped).
    pub fn from_tuples(arity: usize, tuples: impl IntoIterator<Item = Tuple>) -> Relation {
        let mut r = Relation::new(arity);
        for t in tuples {
            r.insert(t);
        }
        r
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of (distinct) tuples.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the relation holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Inserts `t`, returning `true` if it was new. Invalidates cached
    /// indexes (they rebuild on next probe).
    pub fn insert(&mut self, t: Tuple) -> bool {
        assert_eq!(t.arity(), self.arity, "tuple arity mismatch");
        if self.seen.contains_key(&t) {
            return false;
        }
        let id = self.rows.len() as u32;
        self.seen.insert(t.clone(), id);
        self.rows.push(t);
        self.version += 1;
        true
    }

    /// Inserts every tuple, returning how many were new.
    pub fn extend(&mut self, tuples: impl IntoIterator<Item = Tuple>) -> usize {
        tuples
            .into_iter()
            .filter(|t| self.insert(t.clone()))
            .count()
    }

    /// Membership test.
    pub fn contains(&self, t: &Tuple) -> bool {
        self.seen.contains_key(t)
    }

    /// The tuples in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &Tuple> {
        self.rows.iter()
    }

    /// Tuple by row id (as returned by index probes).
    pub fn row(&self, id: u32) -> &Tuple {
        &self.rows[id as usize]
    }

    /// All rows as a slice.
    pub fn rows(&self) -> &[Tuple] {
        &self.rows
    }

    /// A (cached) hash index on `cols`. Rebuilt automatically if the
    /// relation changed since the index was built.
    pub fn index_on(&self, cols: &[usize]) -> Arc<Index> {
        let mut cache = self.index_cache.lock().expect("index cache lock poisoned");
        match cache.get(cols) {
            Some(idx) if idx.version == self.version => idx.clone(),
            _ => {
                let idx = Arc::new(Index::build(&self.rows, cols, self.version));
                cache.insert(cols.to_vec(), idx.clone());
                idx
            }
        }
    }

    /// A (cached) ordered index on the column order `cols`. Rebuilt
    /// automatically if the relation changed since the index was built.
    /// Unlike [`Relation::index_on`], the cache key is an ordered
    /// *sequence*: `[0, 1]` and `[1, 0]` are different indexes.
    pub fn ordered_index_on(&self, cols: &[usize]) -> Arc<OrderedIndex> {
        let mut cache = self
            .ordered_cache
            .lock()
            .expect("ordered cache lock poisoned");
        match cache.get(cols) {
            Some(idx) if idx.version == self.version => idx.clone(),
            _ => {
                let idx = Arc::new(OrderedIndex::build(&self.rows, cols, self.version));
                cache.insert(cols.to_vec(), idx.clone());
                idx
            }
        }
    }

    /// Distinct values in column `c` (counted via a single-column index).
    pub fn distinct_in_col(&self, c: usize) -> usize {
        self.index_on(&[c]).distinct_keys()
    }

    /// Removes `t` if present, returning `true`. Surviving rows keep
    /// their relative (insertion) order; row ids shift, so the version
    /// bump invalidates every cached index snapshot.
    pub fn remove(&mut self, t: &Tuple) -> bool {
        self.remove_batch(std::iter::once(t)) == 1
    }

    /// Removes every tuple of `tuples` that is present, in one pass,
    /// returning how many were removed. Surviving rows keep their
    /// relative order and get fresh row ids; the version bump is
    /// monotone (versions are never reused), so version-keyed index
    /// caches — including snapshots shared with clones — stay correct.
    pub fn remove_batch<'b>(&mut self, tuples: impl IntoIterator<Item = &'b Tuple>) -> usize {
        let mut removed = 0usize;
        for t in tuples {
            debug_assert_eq!(t.arity(), self.arity, "tuple arity mismatch");
            if self.seen.remove(t).is_some() {
                removed += 1;
            }
        }
        if removed == 0 {
            return 0;
        }
        let seen = &self.seen;
        self.rows.retain(|r| seen.contains_key(r));
        for (i, row) in self.rows.iter().enumerate() {
            *self.seen.get_mut(row).expect("surviving row is in seen") = i as u32;
        }
        self.version += 1;
        removed
    }

    /// Reorders the rows into the *canonical* order — ascending by
    /// `Term`'s total order, column by column — rebuilding row ids and
    /// bumping the version when anything actually moves. The incremental
    /// maintenance engine (`ldl-eval::maintain`) keeps derived relations
    /// canonical so that any sequence of updates arriving at the same
    /// set state yields bit-for-bit identical rows, insertion order
    /// included.
    pub fn canonicalize(&mut self) {
        if self.rows.windows(2).all(|w| w[0].0 <= w[1].0) {
            return;
        }
        self.rows.sort_unstable_by(|a, b| a.0.cmp(&b.0));
        for (i, row) in self.rows.iter().enumerate() {
            *self.seen.get_mut(row).expect("row is in seen") = i as u32;
        }
        self.version += 1;
    }

    /// Monotone version counter (bumped on every mutation: insert,
    /// removal, or canonical reorder).
    pub fn version(&self) -> u64 {
        self.version
    }
}

/// Per-tuple derivation counts for one derived relation — the side
/// structure counting-based incremental maintenance keeps next to each
/// non-recursive stratum's relation (see `ldl-eval::maintain`). The
/// maintained invariant: a tuple is in the relation iff its count is
/// positive, where the count is the number of distinct rule derivations
/// (plus one per asserted fact seed). `synced_version` records the
/// relation version the counts were last reconciled with, so the
/// maintenance layer can assert it is not applying a delta against
/// stale counts.
#[derive(Clone, Debug, Default)]
pub struct SupportCounts {
    counts: HashMap<Tuple, u64>,
    synced_version: u64,
}

impl SupportCounts {
    /// Empty support table.
    pub fn new() -> SupportCounts {
        SupportCounts::default()
    }

    /// The derivation count of `t` (0 when unsupported).
    pub fn get(&self, t: &Tuple) -> u64 {
        self.counts.get(t).copied().unwrap_or(0)
    }

    /// Adds `n` derivations for `t`, returning the new count.
    pub fn add(&mut self, t: &Tuple, n: u64) -> u64 {
        if n == 0 {
            return self.get(t);
        }
        let c = self.counts.entry(t.clone()).or_insert(0);
        *c += n;
        *c
    }

    /// Sets the derivation count of `t` outright (0 drops the entry),
    /// returning the new count. Used by maintenance to commit the net
    /// `old + gained - lost` count per affected tuple.
    pub fn set(&mut self, t: &Tuple, n: u64) -> u64 {
        if n == 0 {
            self.counts.remove(t);
        } else {
            self.counts.insert(t.clone(), n);
        }
        n
    }

    /// How many tuples have a positive count.
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// True when no tuple has support.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// The relation version these counts were last reconciled with.
    pub fn synced_version(&self) -> u64 {
        self.synced_version
    }

    /// Records the relation version these counts now agree with.
    pub fn set_synced(&mut self, version: u64) {
        self.synced_version = version;
    }
}

impl Clone for Relation {
    fn clone(&self) -> Relation {
        // Indexes are immutable snapshots keyed by `version`, so the
        // clone can share them via `Arc`: a cloned relation serves
        // cached probes without rebuilding, and its own inserts bump
        // `version` which invalidates the shared entries for the clone
        // only (the original keeps serving them at its version).
        let cache = self
            .index_cache
            .lock()
            .expect("index cache lock poisoned")
            .clone();
        let ordered = self
            .ordered_cache
            .lock()
            .expect("ordered cache lock poisoned")
            .clone();
        Relation {
            arity: self.arity,
            rows: self.rows.clone(),
            seen: self.seen.clone(),
            version: self.version,
            index_cache: Mutex::new(cache),
            ordered_cache: Mutex::new(ordered),
        }
    }
}

impl fmt::Debug for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Relation")
            .field("arity", &self.arity)
            .field("len", &self.rows.len())
            .finish()
    }
}

impl PartialEq for Relation {
    /// Set equality (order-insensitive).
    fn eq(&self, other: &Relation) -> bool {
        self.arity == other.arity
            && self.rows.len() == other.rows.len()
            && self.rows.iter().all(|t| other.contains(t))
    }
}

impl FromIterator<Tuple> for Relation {
    /// Collects tuples; panics on an empty iterator (arity unknown) —
    /// prefer [`Relation::from_tuples`] when emptiness is possible.
    fn from_iter<I: IntoIterator<Item = Tuple>>(iter: I) -> Relation {
        let mut it = iter.into_iter().peekable();
        let arity = it
            .peek()
            .expect("cannot infer arity of empty relation")
            .arity();
        Relation::from_tuples(arity, it)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_deduplicates() {
        let mut r = Relation::new(2);
        assert!(r.insert(Tuple::ints(&[1, 2])));
        assert!(!r.insert(Tuple::ints(&[1, 2])));
        assert!(r.insert(Tuple::ints(&[1, 3])));
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn iteration_preserves_insertion_order() {
        let mut r = Relation::new(1);
        for i in (0..10).rev() {
            r.insert(Tuple::ints(&[i]));
        }
        let got: Vec<i64> = r
            .iter()
            .map(|t| t.get(0).clone())
            .map(|t| match t {
                ldl_core::Term::Const(ldl_core::Value::Int(i)) => i,
                _ => panic!(),
            })
            .collect();
        assert_eq!(got, (0..10).rev().collect::<Vec<_>>());
    }

    #[test]
    fn index_probe_finds_rows() {
        let mut r = Relation::new(2);
        r.insert(Tuple::ints(&[1, 10]));
        r.insert(Tuple::ints(&[1, 20]));
        r.insert(Tuple::ints(&[2, 30]));
        let idx = r.index_on(&[0]);
        assert_eq!(idx.probe(&[Term::int(1)]).len(), 2);
        assert_eq!(idx.probe(&[Term::int(2)]).len(), 1);
        assert_eq!(idx.probe(&[Term::int(9)]).len(), 0);
        assert_eq!(idx.distinct_keys(), 2);
    }

    #[test]
    fn index_invalidated_on_insert() {
        let mut r = Relation::new(1);
        r.insert(Tuple::ints(&[1]));
        let idx = r.index_on(&[0]);
        assert_eq!(idx.probe(&[Term::int(2)]).len(), 0);
        r.insert(Tuple::ints(&[2]));
        let idx2 = r.index_on(&[0]);
        assert_eq!(idx2.probe(&[Term::int(2)]).len(), 1);
    }

    #[test]
    fn multi_column_index() {
        let mut r = Relation::new(3);
        r.insert(Tuple::ints(&[1, 2, 3]));
        r.insert(Tuple::ints(&[1, 2, 4]));
        r.insert(Tuple::ints(&[1, 5, 3]));
        let idx = r.index_on(&[0, 1]);
        assert_eq!(idx.probe(&[Term::int(1), Term::int(2)]).len(), 2);
    }

    #[test]
    fn set_equality_ignores_order() {
        let a = Relation::from_tuples(1, [Tuple::ints(&[1]), Tuple::ints(&[2])]);
        let b = Relation::from_tuples(1, [Tuple::ints(&[2]), Tuple::ints(&[1])]);
        assert_eq!(a, b);
    }

    #[test]
    fn distinct_in_col() {
        let r = Relation::from_tuples(
            2,
            [
                Tuple::ints(&[1, 1]),
                Tuple::ints(&[1, 2]),
                Tuple::ints(&[2, 2]),
            ],
        );
        assert_eq!(r.distinct_in_col(0), 2);
        assert_eq!(r.distinct_in_col(1), 2);
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn arity_mismatch_panics() {
        let mut r = Relation::new(2);
        r.insert(Tuple::ints(&[1]));
    }

    #[test]
    fn ordered_prefix_probe_matches_hash_probe() {
        let mut r = Relation::new(3);
        r.insert(Tuple::ints(&[2, 1, 9]));
        r.insert(Tuple::ints(&[1, 5, 8]));
        r.insert(Tuple::ints(&[1, 2, 7]));
        r.insert(Tuple::ints(&[1, 2, 6]));
        let oi = r.ordered_index_on(&[0, 1]);
        // Full-key probe agrees with the hash index, rids ascending.
        let hash: Vec<u32> = r
            .index_on(&[0, 1])
            .probe(&[Term::int(1), Term::int(2)])
            .to_vec();
        assert_eq!(
            oi.probe_prefix(r.rows(), &[Term::int(1), Term::int(2)]),
            hash
        );
        assert_eq!(hash, vec![2, 3]);
        // Prefix probe: all three rows with first column 1, ascending.
        assert_eq!(oi.probe_prefix(r.rows(), &[Term::int(1)]), vec![1, 2, 3]);
        assert!(oi.probe_prefix(r.rows(), &[Term::int(9)]).is_empty());
    }

    #[test]
    fn ordered_range_probe() {
        let mut r = Relation::new(2);
        for (a, b) in [(1, 10), (1, 20), (1, 30), (2, 5)] {
            r.insert(Tuple::ints(&[a, b]));
        }
        let oi = r.ordered_index_on(&[0, 1]);
        let lo = Term::int(15);
        let hi = Term::int(30);
        assert_eq!(
            oi.probe_range(r.rows(), &[Term::int(1)], Some(&lo), Some(&hi)),
            vec![1, 2]
        );
        assert_eq!(
            oi.probe_range(r.rows(), &[Term::int(1)], Some(&lo), None),
            vec![1, 2]
        );
        assert_eq!(
            oi.probe_range(r.rows(), &[Term::int(1)], None, Some(&lo)),
            vec![0]
        );
        assert!(oi
            .probe_range(r.rows(), &[Term::int(2)], Some(&lo), Some(&hi))
            .is_empty());
    }

    #[test]
    fn range_probe_open_closed_and_half_open_bounds() {
        use std::ops::Bound::{Excluded, Included, Unbounded};
        let mut r = Relation::new(2);
        for (a, b) in [(1, 10), (1, 20), (1, 30), (2, 5)] {
            r.insert(Tuple::ints(&[a, b]));
        }
        let oi = r.ordered_index_on(&[0, 1]);
        let p = [Term::int(1)];
        let (t10, t20, t30) = (Term::int(10), Term::int(20), Term::int(30));
        // Closed [10, 30] keeps all three; open (10, 30) drops both ends.
        assert_eq!(
            oi.probe_range_bounds(r.rows(), &p, Included(&t10), Included(&t30)),
            vec![0, 1, 2]
        );
        assert_eq!(
            oi.probe_range_bounds(r.rows(), &p, Excluded(&t10), Excluded(&t30)),
            vec![1]
        );
        // Half-open both ways.
        assert_eq!(
            oi.probe_range_bounds(r.rows(), &p, Included(&t10), Excluded(&t30)),
            vec![0, 1]
        );
        assert_eq!(
            oi.probe_range_bounds(r.rows(), &p, Excluded(&t10), Included(&t30)),
            vec![1, 2]
        );
        // One-sided.
        assert_eq!(
            oi.probe_range_bounds(r.rows(), &p, Excluded(&t20), Unbounded),
            vec![2]
        );
        assert_eq!(
            oi.probe_range_bounds(r.rows(), &p, Unbounded, Excluded(&t20)),
            vec![0]
        );
    }

    #[test]
    fn range_probe_empty_and_inverted_ranges() {
        use std::ops::Bound::{Excluded, Included};
        let mut r = Relation::new(2);
        for (a, b) in [(1, 10), (1, 20)] {
            r.insert(Tuple::ints(&[a, b]));
        }
        let oi = r.ordered_index_on(&[0, 1]);
        let p = [Term::int(1)];
        let (t10, t15, t20) = (Term::int(10), Term::int(15), Term::int(20));
        // Open interval with nothing inside.
        assert!(oi
            .probe_range_bounds(r.rows(), &p, Excluded(&t10), Excluded(&t15))
            .is_empty());
        // Inverted bounds: lo > hi must yield empty, not panic.
        assert!(oi
            .probe_range_bounds(r.rows(), &p, Included(&t20), Included(&t10))
            .is_empty());
        // Point range at an absent value.
        assert!(oi
            .probe_range_bounds(r.rows(), &p, Included(&t15), Included(&t15))
            .is_empty());
        // Missing prefix.
        assert!(oi
            .probe_range_bounds(r.rows(), &[Term::int(9)], Included(&t10), Included(&t20))
            .is_empty());
    }

    #[test]
    fn range_probe_bound_colliding_with_equality_prefix() {
        use std::ops::Bound::{Excluded, Included};
        // Prefix value 5 also appears in the range column; the range
        // must constrain only the *next* column within the prefix run.
        let mut r = Relation::new(2);
        for (a, b) in [(5, 5), (5, 6), (6, 5)] {
            r.insert(Tuple::ints(&[a, b]));
        }
        let oi = r.ordered_index_on(&[0, 1]);
        let t5 = Term::int(5);
        assert_eq!(
            oi.probe_range_bounds(
                r.rows(),
                std::slice::from_ref(&t5),
                Included(&t5),
                Included(&t5)
            ),
            vec![0]
        );
        assert_eq!(
            oi.probe_range_bounds(
                r.rows(),
                std::slice::from_ref(&t5),
                Excluded(&t5),
                Excluded(&Term::int(7))
            ),
            vec![1]
        );
    }

    #[test]
    fn col_class_reflects_column_population() {
        let mut r = Relation::new(3);
        r.insert(Tuple::new(vec![Term::int(1), Term::sym("a"), Term::int(9)]));
        r.insert(Tuple::new(vec![
            Term::int(2),
            Term::sym("b"),
            Term::sym("mixed"),
        ]));
        let oi = r.ordered_index_on(&[0, 1, 2]);
        assert_eq!(oi.col_class(0), ColClass::Ints);
        assert_eq!(oi.col_class(1), ColClass::Syms);
        assert_eq!(oi.col_class(2), ColClass::Other);
        let empty = Relation::new(1);
        assert_eq!(empty.ordered_index_on(&[0]).col_class(0), ColClass::Empty);
    }

    #[test]
    fn range_probe_counts_separately_from_prefix_probes() {
        let before = counters::IndexCounters::snapshot();
        let mut r = Relation::new(1);
        r.insert(Tuple::ints(&[1]));
        r.insert(Tuple::ints(&[2]));
        let oi = r.ordered_index_on(&[0]);
        oi.probe_range(r.rows(), &[], Some(&Term::int(1)), None);
        let d = before.delta_since();
        assert!(d.range_probes >= 1);
    }

    #[test]
    fn ordered_index_invalidated_on_insert_and_shared_by_clone() {
        let mut r = Relation::new(1);
        r.insert(Tuple::ints(&[1]));
        let oi = r.ordered_index_on(&[0]);
        let c = r.clone();
        assert!(Arc::ptr_eq(&oi, &c.ordered_index_on(&[0])));
        r.insert(Tuple::ints(&[0]));
        let oi2 = r.ordered_index_on(&[0]);
        assert!(!Arc::ptr_eq(&oi, &oi2));
        assert_eq!(oi2.probe_prefix(r.rows(), &[Term::int(0)]), vec![1]);
    }

    #[test]
    fn clone_serves_prebuilt_index_without_rebuilding() {
        let mut r = Relation::new(2);
        r.insert(Tuple::ints(&[1, 10]));
        r.insert(Tuple::ints(&[2, 20]));
        let idx = r.index_on(&[0]);
        let c = r.clone();
        // The clone answers from the same snapshot, not a rebuild.
        assert!(Arc::ptr_eq(&idx, &c.index_on(&[0])));
        assert_eq!(c.index_on(&[0]).probe(&[Term::int(2)]).len(), 1);
    }

    #[test]
    fn remove_preserves_survivor_order_and_reindexes() {
        let mut r = Relation::new(2);
        for (a, b) in [(3, 30), (1, 10), (2, 20), (4, 40)] {
            r.insert(Tuple::ints(&[a, b]));
        }
        let v0 = r.version();
        assert!(r.remove(&Tuple::ints(&[1, 10])));
        assert!(!r.remove(&Tuple::ints(&[1, 10])), "already gone");
        assert!(r.version() > v0, "removal must bump the version");
        let got: Vec<String> = r.iter().map(|t| t.to_string()).collect();
        assert_eq!(got, ["(3, 30)", "(2, 20)", "(4, 40)"]);
        // Probes see the renumbered row ids, not stale ones.
        let idx = r.index_on(&[0]);
        assert_eq!(idx.probe(&[Term::int(4)]), &[2]);
        assert_eq!(idx.probe(&[Term::int(1)]), &[] as &[u32]);
    }

    #[test]
    fn remove_batch_counts_only_present_tuples() {
        let mut r = Relation::new(1);
        for i in 0..5 {
            r.insert(Tuple::ints(&[i]));
        }
        let doomed = [Tuple::ints(&[1]), Tuple::ints(&[99]), Tuple::ints(&[3])];
        assert_eq!(r.remove_batch(doomed.iter()), 2);
        assert_eq!(r.len(), 3);
        // Absent-only batch is a no-op and does not bump the version.
        let v = r.version();
        assert_eq!(r.remove_batch([Tuple::ints(&[42])].iter()), 0);
        assert_eq!(r.version(), v);
    }

    #[test]
    fn canonicalize_sorts_rows_and_rebuilds_ids() {
        let mut r = Relation::new(2);
        for (a, b) in [(2, 1), (1, 2), (1, 1)] {
            r.insert(Tuple::ints(&[a, b]));
        }
        r.canonicalize();
        let got: Vec<String> = r.iter().map(|t| t.to_string()).collect();
        assert_eq!(got, ["(1, 1)", "(1, 2)", "(2, 1)"]);
        assert_eq!(r.index_on(&[0]).probe(&[Term::int(1)]), &[0, 1]);
        // Already-canonical input: no version churn.
        let v = r.version();
        r.canonicalize();
        assert_eq!(r.version(), v);
    }

    #[test]
    fn support_counts_track_and_sync() {
        let mut s = SupportCounts::new();
        let t = Tuple::ints(&[1]);
        assert_eq!(s.get(&t), 0);
        assert_eq!(s.add(&t, 2), 2);
        assert_eq!(s.add(&t, 1), 3);
        assert_eq!(s.set(&t, 1), 1);
        assert_eq!(s.set(&t, 0), 0);
        assert!(s.is_empty());
        s.set_synced(7);
        assert_eq!(s.synced_version(), 7);
    }

    #[test]
    fn scoped_counters_isolate_and_nest() {
        let mut r = Relation::new(1);
        r.insert(Tuple::ints(&[1]));
        let (_, outer) = counters::IndexCounters::scoped(|| {
            r.index_on(&[0]).probe(&[Term::int(1)]);
            let ((), inner) = counters::IndexCounters::scoped(|| {
                counters::note_rows_enumerated(5);
            });
            assert_eq!(inner.rows_enumerated, 5);
            assert_eq!(inner.hash_probes, 0, "inner scope misses outer work");
        });
        assert_eq!(outer.hash_probes, 1);
        assert_eq!(outer.rows_enumerated, 5, "outer scope sees nested work");
    }

    #[test]
    fn scope_handle_attributes_worker_thread_bumps() {
        let ((), c) = counters::IndexCounters::scoped(|| {
            let handle = counters::scope_handle();
            // Re-entering on the same thread must not double-count.
            let _same = handle.enter();
            counters::note_rows_enumerated(1);
            std::thread::scope(|s| {
                s.spawn(|| {
                    let _g = handle.enter();
                    counters::note_rows_enumerated(10);
                });
            });
        });
        assert_eq!(c.rows_enumerated, 11);
    }

    #[test]
    fn clone_invalidates_shared_index_after_insert() {
        let mut r = Relation::new(1);
        r.insert(Tuple::ints(&[1]));
        let idx = r.index_on(&[0]);
        let mut c = r.clone();
        c.insert(Tuple::ints(&[2]));
        let idx2 = c.index_on(&[0]);
        assert!(!Arc::ptr_eq(&idx, &idx2));
        assert_eq!(idx2.probe(&[Term::int(2)]).len(), 1);
        // The original still serves its own (valid) snapshot.
        assert!(Arc::ptr_eq(&idx, &r.index_on(&[0])));
    }
}
