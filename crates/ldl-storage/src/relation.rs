//! Relations: duplicate-free tuple sets with hash and ordered indexes.

use crate::tuple::Tuple;
use ldl_core::Term;
use std::cmp::Ordering;
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering as AtomicOrdering};
use std::sync::{Arc, Mutex};

/// Process-wide index work counters, the observable the index-selection
/// experiments measure: how many index structures were built (per kind)
/// and how many probes they served. Monotone; relative measurement uses
/// [`IndexCounters::snapshot`] + [`IndexCounters::delta_since`].
/// Counters are global — tests asserting exact deltas must run in their
/// own process (a single-test integration binary), since concurrently
/// running tests share them.
pub mod counters {
    use super::{AtomicOrdering, AtomicU64};

    pub(super) static HASH_BUILDS: AtomicU64 = AtomicU64::new(0);
    pub(super) static ORDERED_BUILDS: AtomicU64 = AtomicU64::new(0);
    pub(super) static HASH_PROBES: AtomicU64 = AtomicU64::new(0);
    pub(super) static ORDERED_PROBES: AtomicU64 = AtomicU64::new(0);
    pub(super) static RANGE_PROBES: AtomicU64 = AtomicU64::new(0);
    pub(super) static ROWS_ENUMERATED: AtomicU64 = AtomicU64::new(0);

    /// Records `n` tuples handed to the evaluator's unification loop by
    /// one access (scan, probe, or range probe). Bumped by the rule
    /// executor at every positive-atom access site — not by the index
    /// structures themselves — so the counter has one crisp meaning:
    /// rows *enumerated* before residual filtering.
    pub fn note_rows_enumerated(n: u64) {
        ROWS_ENUMERATED.fetch_add(n, AtomicOrdering::Relaxed);
    }

    /// A snapshot of the index work counters.
    #[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
    pub struct IndexCounters {
        /// Hash indexes built ([`super::Relation::index_on`] misses).
        pub hash_builds: u64,
        /// Ordered indexes built ([`super::Relation::ordered_index_on`] misses).
        pub ordered_builds: u64,
        /// Probes served by hash indexes.
        pub hash_probes: u64,
        /// Equality-prefix probes served by ordered indexes.
        pub ordered_probes: u64,
        /// Range probes (bound inequality folded into the access) served
        /// by ordered indexes.
        pub range_probes: u64,
        /// Tuples enumerated by the rule executor across all access
        /// paths (see [`note_rows_enumerated`]).
        pub rows_enumerated: u64,
    }

    impl IndexCounters {
        /// Current counter values.
        pub fn snapshot() -> IndexCounters {
            IndexCounters {
                hash_builds: HASH_BUILDS.load(AtomicOrdering::Relaxed),
                ordered_builds: ORDERED_BUILDS.load(AtomicOrdering::Relaxed),
                hash_probes: HASH_PROBES.load(AtomicOrdering::Relaxed),
                ordered_probes: ORDERED_PROBES.load(AtomicOrdering::Relaxed),
                range_probes: RANGE_PROBES.load(AtomicOrdering::Relaxed),
                rows_enumerated: ROWS_ENUMERATED.load(AtomicOrdering::Relaxed),
            }
        }

        /// Work performed since `self` was snapshot.
        pub fn delta_since(&self) -> IndexCounters {
            let now = IndexCounters::snapshot();
            IndexCounters {
                hash_builds: now.hash_builds - self.hash_builds,
                ordered_builds: now.ordered_builds - self.ordered_builds,
                hash_probes: now.hash_probes - self.hash_probes,
                ordered_probes: now.ordered_probes - self.ordered_probes,
                range_probes: now.range_probes - self.range_probes,
                rows_enumerated: now.rows_enumerated - self.rows_enumerated,
            }
        }
    }
}

/// A hash index over a snapshot of a relation: maps the values at
/// `key_cols` to the row ids holding them.
///
/// Indexes are immutable snapshots. [`Relation`] caches one per column
/// set and invalidates the cache on insertion, so probes after an update
/// transparently rebuild.
#[derive(Clone, Debug)]
pub struct Index {
    key_cols: Vec<usize>,
    map: HashMap<Vec<Term>, Vec<u32>>,
    /// Relation version this index was built against.
    version: u64,
}

impl Index {
    fn build(rows: &[Tuple], key_cols: &[usize], version: u64) -> Index {
        counters::HASH_BUILDS.fetch_add(1, AtomicOrdering::Relaxed);
        let mut map: HashMap<Vec<Term>, Vec<u32>> = HashMap::new();
        for (i, t) in rows.iter().enumerate() {
            let key: Vec<Term> = key_cols.iter().map(|&c| t.get(c).clone()).collect();
            map.entry(key).or_default().push(i as u32);
        }
        Index {
            key_cols: key_cols.to_vec(),
            map,
            version,
        }
    }

    /// Row ids whose `key_cols` equal `key`, ascending (insertion order).
    pub fn probe(&self, key: &[Term]) -> &[u32] {
        debug_assert_eq!(key.len(), self.key_cols.len());
        counters::HASH_PROBES.fetch_add(1, AtomicOrdering::Relaxed);
        self.map.get(key).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// Number of distinct keys.
    pub fn distinct_keys(&self) -> usize {
        self.map.len()
    }

    /// The indexed columns.
    pub fn key_cols(&self) -> &[usize] {
        &self.key_cols
    }
}

/// The value-type population of one indexed column, computed when an
/// [`OrderedIndex`] is built. Range folding consults this before turning
/// a bound inequality into a range probe: a probe over a homogeneous
/// `Ints`/`Syms` column with a same-typed constant bound enumerates
/// exactly the rows a post-enumeration filter would keep, and — because
/// no enumerated row can raise an undefined-ordering error — preserves
/// the error behavior of the scan-and-filter path under strict select.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ColClass {
    /// No rows: any fold is trivially sound.
    Empty,
    /// Every value is `Const(Int)`.
    Ints,
    /// Every value is `Const(Sym)`.
    Syms,
    /// Mixed types or structured terms: never fold (the residual filter
    /// must run so undefined orderings surface exactly as on a scan).
    Other,
}

/// An ordered index over a snapshot of a relation: a permutation of the
/// row ids sorted lexicographically by the values at `cols` (ties broken
/// by row id). One ordered index serves *every* bound-column set that is
/// a prefix of `cols` via binary-searched prefix probes — this is what
/// lets a minimum-chain-cover index selection (see the `ldl-index`
/// crate) replace one hash index per search signature with one ordered
/// index per chain.
///
/// Like [`Index`], ordered indexes are immutable snapshots keyed by the
/// relation version and cached by [`Relation::ordered_index_on`].
#[derive(Clone, Debug)]
pub struct OrderedIndex {
    cols: Vec<usize>,
    /// Row ids sorted by (values at `cols`, row id).
    perm: Vec<u32>,
    /// Per-indexed-column value-type population (same length as `cols`).
    classes: Vec<ColClass>,
    /// Relation version this index was built against.
    version: u64,
}

impl OrderedIndex {
    fn build(rows: &[Tuple], cols: &[usize], version: u64) -> OrderedIndex {
        counters::ORDERED_BUILDS.fetch_add(1, AtomicOrdering::Relaxed);
        let mut perm: Vec<u32> = (0..rows.len() as u32).collect();
        perm.sort_unstable_by(|&a, &b| {
            let (ra, rb) = (&rows[a as usize], &rows[b as usize]);
            for &c in cols {
                match ra.get(c).cmp(rb.get(c)) {
                    Ordering::Equal => {}
                    other => return other,
                }
            }
            a.cmp(&b)
        });
        let classes = cols
            .iter()
            .map(|&c| {
                let mut class = ColClass::Empty;
                for t in rows {
                    let this = match t.get(c) {
                        Term::Const(ldl_core::Value::Int(_)) => ColClass::Ints,
                        Term::Const(ldl_core::Value::Sym(_)) => ColClass::Syms,
                        _ => ColClass::Other,
                    };
                    class = match (class, this) {
                        (ColClass::Empty, x) => x,
                        (x, y) if x == y => x,
                        _ => return ColClass::Other,
                    };
                }
                class
            })
            .collect();
        OrderedIndex {
            cols: cols.to_vec(),
            perm,
            classes,
            version,
        }
    }

    /// The indexed column order.
    pub fn cols(&self) -> &[usize] {
        &self.cols
    }

    /// The value-type population of the column at index `depth` of
    /// [`OrderedIndex::cols`].
    pub fn col_class(&self, depth: usize) -> ColClass {
        self.classes[depth]
    }

    /// Compares the first `key.len()` indexed columns of `row` against
    /// `key` lexicographically.
    fn cmp_prefix(&self, row: &Tuple, key: &[Term]) -> Ordering {
        for (&c, k) in self.cols.iter().zip(key) {
            match row.get(c).cmp(k) {
                Ordering::Equal => {}
                other => return other,
            }
        }
        Ordering::Equal
    }

    /// The contiguous run of `perm` whose first `key.len()` indexed
    /// columns equal `key` (binary search, O(log n) comparisons).
    fn equal_run(&self, rows: &[Tuple], key: &[Term]) -> std::ops::Range<usize> {
        debug_assert!(key.len() <= self.cols.len());
        let lo = self
            .perm
            .partition_point(|&rid| self.cmp_prefix(&rows[rid as usize], key) == Ordering::Less);
        let hi = self
            .perm
            .partition_point(|&rid| self.cmp_prefix(&rows[rid as usize], key) != Ordering::Greater);
        lo..hi
    }

    /// Row ids whose first `key.len()` indexed columns equal `key`,
    /// returned **ascending** — the same emission order a hash-index
    /// probe or a full scan yields, which is what keeps the evaluator's
    /// bit-for-bit determinism contract access-path independent.
    pub fn probe_prefix(&self, rows: &[Tuple], key: &[Term]) -> Vec<u32> {
        counters::ORDERED_PROBES.fetch_add(1, AtomicOrdering::Relaxed);
        let run = self.equal_run(rows, key);
        let mut out = self.perm[run].to_vec();
        out.sort_unstable();
        debug_assert!(
            out.windows(2).all(|w| w[0] < w[1]),
            "probe_prefix must yield strictly ascending rids"
        );
        out
    }

    /// Range probe with inclusive bounds: row ids whose first
    /// `prefix.len()` indexed columns equal `prefix` and whose *next*
    /// indexed column lies in `[low, high]` (each bound optional).
    /// Returned ascending, like [`OrderedIndex::probe_prefix`].
    pub fn probe_range(
        &self,
        rows: &[Tuple],
        prefix: &[Term],
        low: Option<&Term>,
        high: Option<&Term>,
    ) -> Vec<u32> {
        use std::ops::Bound;
        let lo = low.map_or(Bound::Unbounded, Bound::Included);
        let hi = high.map_or(Bound::Unbounded, Bound::Included);
        self.probe_range_bounds(rows, prefix, lo, hi)
    }

    /// Range probe with explicit open/closed/unbounded ends — the form
    /// the rule executor issues when it folds bound `<,<=,>,>=` builtins
    /// into the access. Row ids come back **ascending** (insertion
    /// order), so the folded stream equals the scan-and-filter stream.
    pub fn probe_range_bounds(
        &self,
        rows: &[Tuple],
        prefix: &[Term],
        low: std::ops::Bound<&Term>,
        high: std::ops::Bound<&Term>,
    ) -> Vec<u32> {
        use std::ops::Bound;
        counters::RANGE_PROBES.fetch_add(1, AtomicOrdering::Relaxed);
        debug_assert!(prefix.len() < self.cols.len());
        let run = self.equal_run(rows, prefix);
        let next_col = self.cols[prefix.len()];
        let lo = match low {
            Bound::Included(l) => {
                run.start
                    + self.perm[run.clone()]
                        .partition_point(|&rid| rows[rid as usize].get(next_col) < l)
            }
            Bound::Excluded(l) => {
                run.start
                    + self.perm[run.clone()]
                        .partition_point(|&rid| rows[rid as usize].get(next_col) <= l)
            }
            Bound::Unbounded => run.start,
        };
        let hi = match high {
            Bound::Included(h) => {
                run.start
                    + self.perm[run.clone()]
                        .partition_point(|&rid| rows[rid as usize].get(next_col) <= h)
            }
            Bound::Excluded(h) => {
                run.start
                    + self.perm[run.clone()]
                        .partition_point(|&rid| rows[rid as usize].get(next_col) < h)
            }
            Bound::Unbounded => run.end,
        };
        let mut out = self.perm[lo..hi.max(lo)].to_vec();
        out.sort_unstable();
        debug_assert!(
            out.windows(2).all(|w| w[0] < w[1]),
            "probe_range must yield strictly ascending rids"
        );
        out
    }
}

/// A duplicate-free, insertion-ordered set of tuples of fixed arity.
pub struct Relation {
    arity: usize,
    rows: Vec<Tuple>,
    seen: HashMap<Tuple, u32>,
    version: u64,
    /// Lazily built indexes keyed by column set.
    index_cache: Mutex<HashMap<Vec<usize>, Arc<Index>>>,
    /// Lazily built ordered indexes keyed by column order.
    ordered_cache: Mutex<HashMap<Vec<usize>, Arc<OrderedIndex>>>,
}

impl Relation {
    /// Empty relation of the given arity.
    pub fn new(arity: usize) -> Relation {
        Relation {
            arity,
            rows: Vec::new(),
            seen: HashMap::new(),
            version: 0,
            index_cache: Mutex::new(HashMap::new()),
            ordered_cache: Mutex::new(HashMap::new()),
        }
    }

    /// Relation initialized from tuples (duplicates dropped).
    pub fn from_tuples(arity: usize, tuples: impl IntoIterator<Item = Tuple>) -> Relation {
        let mut r = Relation::new(arity);
        for t in tuples {
            r.insert(t);
        }
        r
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of (distinct) tuples.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the relation holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Inserts `t`, returning `true` if it was new. Invalidates cached
    /// indexes (they rebuild on next probe).
    pub fn insert(&mut self, t: Tuple) -> bool {
        assert_eq!(t.arity(), self.arity, "tuple arity mismatch");
        if self.seen.contains_key(&t) {
            return false;
        }
        let id = self.rows.len() as u32;
        self.seen.insert(t.clone(), id);
        self.rows.push(t);
        self.version += 1;
        true
    }

    /// Inserts every tuple, returning how many were new.
    pub fn extend(&mut self, tuples: impl IntoIterator<Item = Tuple>) -> usize {
        tuples
            .into_iter()
            .filter(|t| self.insert(t.clone()))
            .count()
    }

    /// Membership test.
    pub fn contains(&self, t: &Tuple) -> bool {
        self.seen.contains_key(t)
    }

    /// The tuples in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &Tuple> {
        self.rows.iter()
    }

    /// Tuple by row id (as returned by index probes).
    pub fn row(&self, id: u32) -> &Tuple {
        &self.rows[id as usize]
    }

    /// All rows as a slice.
    pub fn rows(&self) -> &[Tuple] {
        &self.rows
    }

    /// A (cached) hash index on `cols`. Rebuilt automatically if the
    /// relation changed since the index was built.
    pub fn index_on(&self, cols: &[usize]) -> Arc<Index> {
        let mut cache = self.index_cache.lock().expect("index cache lock poisoned");
        match cache.get(cols) {
            Some(idx) if idx.version == self.version => idx.clone(),
            _ => {
                let idx = Arc::new(Index::build(&self.rows, cols, self.version));
                cache.insert(cols.to_vec(), idx.clone());
                idx
            }
        }
    }

    /// A (cached) ordered index on the column order `cols`. Rebuilt
    /// automatically if the relation changed since the index was built.
    /// Unlike [`Relation::index_on`], the cache key is an ordered
    /// *sequence*: `[0, 1]` and `[1, 0]` are different indexes.
    pub fn ordered_index_on(&self, cols: &[usize]) -> Arc<OrderedIndex> {
        let mut cache = self
            .ordered_cache
            .lock()
            .expect("ordered cache lock poisoned");
        match cache.get(cols) {
            Some(idx) if idx.version == self.version => idx.clone(),
            _ => {
                let idx = Arc::new(OrderedIndex::build(&self.rows, cols, self.version));
                cache.insert(cols.to_vec(), idx.clone());
                idx
            }
        }
    }

    /// Distinct values in column `c` (counted via a single-column index).
    pub fn distinct_in_col(&self, c: usize) -> usize {
        self.index_on(&[c]).distinct_keys()
    }

    /// Monotone version counter (bumped on every successful insert).
    pub fn version(&self) -> u64 {
        self.version
    }
}

impl Clone for Relation {
    fn clone(&self) -> Relation {
        // Indexes are immutable snapshots keyed by `version`, so the
        // clone can share them via `Arc`: a cloned relation serves
        // cached probes without rebuilding, and its own inserts bump
        // `version` which invalidates the shared entries for the clone
        // only (the original keeps serving them at its version).
        let cache = self
            .index_cache
            .lock()
            .expect("index cache lock poisoned")
            .clone();
        let ordered = self
            .ordered_cache
            .lock()
            .expect("ordered cache lock poisoned")
            .clone();
        Relation {
            arity: self.arity,
            rows: self.rows.clone(),
            seen: self.seen.clone(),
            version: self.version,
            index_cache: Mutex::new(cache),
            ordered_cache: Mutex::new(ordered),
        }
    }
}

impl fmt::Debug for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Relation")
            .field("arity", &self.arity)
            .field("len", &self.rows.len())
            .finish()
    }
}

impl PartialEq for Relation {
    /// Set equality (order-insensitive).
    fn eq(&self, other: &Relation) -> bool {
        self.arity == other.arity
            && self.rows.len() == other.rows.len()
            && self.rows.iter().all(|t| other.contains(t))
    }
}

impl FromIterator<Tuple> for Relation {
    /// Collects tuples; panics on an empty iterator (arity unknown) —
    /// prefer [`Relation::from_tuples`] when emptiness is possible.
    fn from_iter<I: IntoIterator<Item = Tuple>>(iter: I) -> Relation {
        let mut it = iter.into_iter().peekable();
        let arity = it
            .peek()
            .expect("cannot infer arity of empty relation")
            .arity();
        Relation::from_tuples(arity, it)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_deduplicates() {
        let mut r = Relation::new(2);
        assert!(r.insert(Tuple::ints(&[1, 2])));
        assert!(!r.insert(Tuple::ints(&[1, 2])));
        assert!(r.insert(Tuple::ints(&[1, 3])));
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn iteration_preserves_insertion_order() {
        let mut r = Relation::new(1);
        for i in (0..10).rev() {
            r.insert(Tuple::ints(&[i]));
        }
        let got: Vec<i64> = r
            .iter()
            .map(|t| t.get(0).clone())
            .map(|t| match t {
                ldl_core::Term::Const(ldl_core::Value::Int(i)) => i,
                _ => panic!(),
            })
            .collect();
        assert_eq!(got, (0..10).rev().collect::<Vec<_>>());
    }

    #[test]
    fn index_probe_finds_rows() {
        let mut r = Relation::new(2);
        r.insert(Tuple::ints(&[1, 10]));
        r.insert(Tuple::ints(&[1, 20]));
        r.insert(Tuple::ints(&[2, 30]));
        let idx = r.index_on(&[0]);
        assert_eq!(idx.probe(&[Term::int(1)]).len(), 2);
        assert_eq!(idx.probe(&[Term::int(2)]).len(), 1);
        assert_eq!(idx.probe(&[Term::int(9)]).len(), 0);
        assert_eq!(idx.distinct_keys(), 2);
    }

    #[test]
    fn index_invalidated_on_insert() {
        let mut r = Relation::new(1);
        r.insert(Tuple::ints(&[1]));
        let idx = r.index_on(&[0]);
        assert_eq!(idx.probe(&[Term::int(2)]).len(), 0);
        r.insert(Tuple::ints(&[2]));
        let idx2 = r.index_on(&[0]);
        assert_eq!(idx2.probe(&[Term::int(2)]).len(), 1);
    }

    #[test]
    fn multi_column_index() {
        let mut r = Relation::new(3);
        r.insert(Tuple::ints(&[1, 2, 3]));
        r.insert(Tuple::ints(&[1, 2, 4]));
        r.insert(Tuple::ints(&[1, 5, 3]));
        let idx = r.index_on(&[0, 1]);
        assert_eq!(idx.probe(&[Term::int(1), Term::int(2)]).len(), 2);
    }

    #[test]
    fn set_equality_ignores_order() {
        let a = Relation::from_tuples(1, [Tuple::ints(&[1]), Tuple::ints(&[2])]);
        let b = Relation::from_tuples(1, [Tuple::ints(&[2]), Tuple::ints(&[1])]);
        assert_eq!(a, b);
    }

    #[test]
    fn distinct_in_col() {
        let r = Relation::from_tuples(
            2,
            [
                Tuple::ints(&[1, 1]),
                Tuple::ints(&[1, 2]),
                Tuple::ints(&[2, 2]),
            ],
        );
        assert_eq!(r.distinct_in_col(0), 2);
        assert_eq!(r.distinct_in_col(1), 2);
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn arity_mismatch_panics() {
        let mut r = Relation::new(2);
        r.insert(Tuple::ints(&[1]));
    }

    #[test]
    fn ordered_prefix_probe_matches_hash_probe() {
        let mut r = Relation::new(3);
        r.insert(Tuple::ints(&[2, 1, 9]));
        r.insert(Tuple::ints(&[1, 5, 8]));
        r.insert(Tuple::ints(&[1, 2, 7]));
        r.insert(Tuple::ints(&[1, 2, 6]));
        let oi = r.ordered_index_on(&[0, 1]);
        // Full-key probe agrees with the hash index, rids ascending.
        let hash: Vec<u32> = r
            .index_on(&[0, 1])
            .probe(&[Term::int(1), Term::int(2)])
            .to_vec();
        assert_eq!(
            oi.probe_prefix(r.rows(), &[Term::int(1), Term::int(2)]),
            hash
        );
        assert_eq!(hash, vec![2, 3]);
        // Prefix probe: all three rows with first column 1, ascending.
        assert_eq!(oi.probe_prefix(r.rows(), &[Term::int(1)]), vec![1, 2, 3]);
        assert!(oi.probe_prefix(r.rows(), &[Term::int(9)]).is_empty());
    }

    #[test]
    fn ordered_range_probe() {
        let mut r = Relation::new(2);
        for (a, b) in [(1, 10), (1, 20), (1, 30), (2, 5)] {
            r.insert(Tuple::ints(&[a, b]));
        }
        let oi = r.ordered_index_on(&[0, 1]);
        let lo = Term::int(15);
        let hi = Term::int(30);
        assert_eq!(
            oi.probe_range(r.rows(), &[Term::int(1)], Some(&lo), Some(&hi)),
            vec![1, 2]
        );
        assert_eq!(
            oi.probe_range(r.rows(), &[Term::int(1)], Some(&lo), None),
            vec![1, 2]
        );
        assert_eq!(
            oi.probe_range(r.rows(), &[Term::int(1)], None, Some(&lo)),
            vec![0]
        );
        assert!(oi
            .probe_range(r.rows(), &[Term::int(2)], Some(&lo), Some(&hi))
            .is_empty());
    }

    #[test]
    fn range_probe_open_closed_and_half_open_bounds() {
        use std::ops::Bound::{Excluded, Included, Unbounded};
        let mut r = Relation::new(2);
        for (a, b) in [(1, 10), (1, 20), (1, 30), (2, 5)] {
            r.insert(Tuple::ints(&[a, b]));
        }
        let oi = r.ordered_index_on(&[0, 1]);
        let p = [Term::int(1)];
        let (t10, t20, t30) = (Term::int(10), Term::int(20), Term::int(30));
        // Closed [10, 30] keeps all three; open (10, 30) drops both ends.
        assert_eq!(
            oi.probe_range_bounds(r.rows(), &p, Included(&t10), Included(&t30)),
            vec![0, 1, 2]
        );
        assert_eq!(
            oi.probe_range_bounds(r.rows(), &p, Excluded(&t10), Excluded(&t30)),
            vec![1]
        );
        // Half-open both ways.
        assert_eq!(
            oi.probe_range_bounds(r.rows(), &p, Included(&t10), Excluded(&t30)),
            vec![0, 1]
        );
        assert_eq!(
            oi.probe_range_bounds(r.rows(), &p, Excluded(&t10), Included(&t30)),
            vec![1, 2]
        );
        // One-sided.
        assert_eq!(
            oi.probe_range_bounds(r.rows(), &p, Excluded(&t20), Unbounded),
            vec![2]
        );
        assert_eq!(
            oi.probe_range_bounds(r.rows(), &p, Unbounded, Excluded(&t20)),
            vec![0]
        );
    }

    #[test]
    fn range_probe_empty_and_inverted_ranges() {
        use std::ops::Bound::{Excluded, Included};
        let mut r = Relation::new(2);
        for (a, b) in [(1, 10), (1, 20)] {
            r.insert(Tuple::ints(&[a, b]));
        }
        let oi = r.ordered_index_on(&[0, 1]);
        let p = [Term::int(1)];
        let (t10, t15, t20) = (Term::int(10), Term::int(15), Term::int(20));
        // Open interval with nothing inside.
        assert!(oi
            .probe_range_bounds(r.rows(), &p, Excluded(&t10), Excluded(&t15))
            .is_empty());
        // Inverted bounds: lo > hi must yield empty, not panic.
        assert!(oi
            .probe_range_bounds(r.rows(), &p, Included(&t20), Included(&t10))
            .is_empty());
        // Point range at an absent value.
        assert!(oi
            .probe_range_bounds(r.rows(), &p, Included(&t15), Included(&t15))
            .is_empty());
        // Missing prefix.
        assert!(oi
            .probe_range_bounds(r.rows(), &[Term::int(9)], Included(&t10), Included(&t20))
            .is_empty());
    }

    #[test]
    fn range_probe_bound_colliding_with_equality_prefix() {
        use std::ops::Bound::{Excluded, Included};
        // Prefix value 5 also appears in the range column; the range
        // must constrain only the *next* column within the prefix run.
        let mut r = Relation::new(2);
        for (a, b) in [(5, 5), (5, 6), (6, 5)] {
            r.insert(Tuple::ints(&[a, b]));
        }
        let oi = r.ordered_index_on(&[0, 1]);
        let t5 = Term::int(5);
        assert_eq!(
            oi.probe_range_bounds(
                r.rows(),
                std::slice::from_ref(&t5),
                Included(&t5),
                Included(&t5)
            ),
            vec![0]
        );
        assert_eq!(
            oi.probe_range_bounds(
                r.rows(),
                std::slice::from_ref(&t5),
                Excluded(&t5),
                Excluded(&Term::int(7))
            ),
            vec![1]
        );
    }

    #[test]
    fn col_class_reflects_column_population() {
        let mut r = Relation::new(3);
        r.insert(Tuple::new(vec![Term::int(1), Term::sym("a"), Term::int(9)]));
        r.insert(Tuple::new(vec![
            Term::int(2),
            Term::sym("b"),
            Term::sym("mixed"),
        ]));
        let oi = r.ordered_index_on(&[0, 1, 2]);
        assert_eq!(oi.col_class(0), ColClass::Ints);
        assert_eq!(oi.col_class(1), ColClass::Syms);
        assert_eq!(oi.col_class(2), ColClass::Other);
        let empty = Relation::new(1);
        assert_eq!(empty.ordered_index_on(&[0]).col_class(0), ColClass::Empty);
    }

    #[test]
    fn range_probe_counts_separately_from_prefix_probes() {
        let before = counters::IndexCounters::snapshot();
        let mut r = Relation::new(1);
        r.insert(Tuple::ints(&[1]));
        r.insert(Tuple::ints(&[2]));
        let oi = r.ordered_index_on(&[0]);
        oi.probe_range(r.rows(), &[], Some(&Term::int(1)), None);
        let d = before.delta_since();
        assert!(d.range_probes >= 1);
    }

    #[test]
    fn ordered_index_invalidated_on_insert_and_shared_by_clone() {
        let mut r = Relation::new(1);
        r.insert(Tuple::ints(&[1]));
        let oi = r.ordered_index_on(&[0]);
        let c = r.clone();
        assert!(Arc::ptr_eq(&oi, &c.ordered_index_on(&[0])));
        r.insert(Tuple::ints(&[0]));
        let oi2 = r.ordered_index_on(&[0]);
        assert!(!Arc::ptr_eq(&oi, &oi2));
        assert_eq!(oi2.probe_prefix(r.rows(), &[Term::int(0)]), vec![1]);
    }

    #[test]
    fn clone_serves_prebuilt_index_without_rebuilding() {
        let mut r = Relation::new(2);
        r.insert(Tuple::ints(&[1, 10]));
        r.insert(Tuple::ints(&[2, 20]));
        let idx = r.index_on(&[0]);
        let c = r.clone();
        // The clone answers from the same snapshot, not a rebuild.
        assert!(Arc::ptr_eq(&idx, &c.index_on(&[0])));
        assert_eq!(c.index_on(&[0]).probe(&[Term::int(2)]).len(), 1);
    }

    #[test]
    fn clone_invalidates_shared_index_after_insert() {
        let mut r = Relation::new(1);
        r.insert(Tuple::ints(&[1]));
        let idx = r.index_on(&[0]);
        let mut c = r.clone();
        c.insert(Tuple::ints(&[2]));
        let idx2 = c.index_on(&[0]);
        assert!(!Arc::ptr_eq(&idx, &idx2));
        assert_eq!(idx2.probe(&[Term::int(2)]).len(), 1);
        // The original still serves its own (valid) snapshot.
        assert!(Arc::ptr_eq(&idx, &r.index_on(&[0])));
    }
}
