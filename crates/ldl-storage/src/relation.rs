//! Relations: duplicate-free tuple sets with hash indexes.

use crate::tuple::Tuple;
use ldl_core::Term;
use std::collections::HashMap;
use std::fmt;
use std::sync::{Arc, Mutex};

/// A hash index over a snapshot of a relation: maps the values at
/// `key_cols` to the row ids holding them.
///
/// Indexes are immutable snapshots. [`Relation`] caches one per column
/// set and invalidates the cache on insertion, so probes after an update
/// transparently rebuild.
#[derive(Clone, Debug)]
pub struct Index {
    key_cols: Vec<usize>,
    map: HashMap<Vec<Term>, Vec<u32>>,
    /// Relation version this index was built against.
    version: u64,
}

impl Index {
    fn build(rows: &[Tuple], key_cols: &[usize], version: u64) -> Index {
        let mut map: HashMap<Vec<Term>, Vec<u32>> = HashMap::new();
        for (i, t) in rows.iter().enumerate() {
            let key: Vec<Term> = key_cols.iter().map(|&c| t.get(c).clone()).collect();
            map.entry(key).or_default().push(i as u32);
        }
        Index { key_cols: key_cols.to_vec(), map, version }
    }

    /// Row ids whose `key_cols` equal `key`.
    pub fn probe(&self, key: &[Term]) -> &[u32] {
        debug_assert_eq!(key.len(), self.key_cols.len());
        self.map.get(key).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// Number of distinct keys.
    pub fn distinct_keys(&self) -> usize {
        self.map.len()
    }

    /// The indexed columns.
    pub fn key_cols(&self) -> &[usize] {
        &self.key_cols
    }
}

/// A duplicate-free, insertion-ordered set of tuples of fixed arity.
pub struct Relation {
    arity: usize,
    rows: Vec<Tuple>,
    seen: HashMap<Tuple, u32>,
    version: u64,
    /// Lazily built indexes keyed by column set.
    index_cache: Mutex<HashMap<Vec<usize>, Arc<Index>>>,
}

impl Relation {
    /// Empty relation of the given arity.
    pub fn new(arity: usize) -> Relation {
        Relation {
            arity,
            rows: Vec::new(),
            seen: HashMap::new(),
            version: 0,
            index_cache: Mutex::new(HashMap::new()),
        }
    }

    /// Relation initialized from tuples (duplicates dropped).
    pub fn from_tuples(arity: usize, tuples: impl IntoIterator<Item = Tuple>) -> Relation {
        let mut r = Relation::new(arity);
        for t in tuples {
            r.insert(t);
        }
        r
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of (distinct) tuples.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the relation holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Inserts `t`, returning `true` if it was new. Invalidates cached
    /// indexes (they rebuild on next probe).
    pub fn insert(&mut self, t: Tuple) -> bool {
        assert_eq!(t.arity(), self.arity, "tuple arity mismatch");
        if self.seen.contains_key(&t) {
            return false;
        }
        let id = self.rows.len() as u32;
        self.seen.insert(t.clone(), id);
        self.rows.push(t);
        self.version += 1;
        true
    }

    /// Inserts every tuple, returning how many were new.
    pub fn extend(&mut self, tuples: impl IntoIterator<Item = Tuple>) -> usize {
        tuples.into_iter().filter(|t| self.insert(t.clone())).count()
    }

    /// Membership test.
    pub fn contains(&self, t: &Tuple) -> bool {
        self.seen.contains_key(t)
    }

    /// The tuples in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &Tuple> {
        self.rows.iter()
    }

    /// Tuple by row id (as returned by index probes).
    pub fn row(&self, id: u32) -> &Tuple {
        &self.rows[id as usize]
    }

    /// All rows as a slice.
    pub fn rows(&self) -> &[Tuple] {
        &self.rows
    }

    /// A (cached) hash index on `cols`. Rebuilt automatically if the
    /// relation changed since the index was built.
    pub fn index_on(&self, cols: &[usize]) -> Arc<Index> {
        let mut cache = self.index_cache.lock().expect("index cache lock poisoned");
        match cache.get(cols) {
            Some(idx) if idx.version == self.version => idx.clone(),
            _ => {
                let idx = Arc::new(Index::build(&self.rows, cols, self.version));
                cache.insert(cols.to_vec(), idx.clone());
                idx
            }
        }
    }

    /// Distinct values in column `c` (counted via a single-column index).
    pub fn distinct_in_col(&self, c: usize) -> usize {
        self.index_on(&[c]).distinct_keys()
    }

    /// Monotone version counter (bumped on every successful insert).
    pub fn version(&self) -> u64 {
        self.version
    }
}

impl Clone for Relation {
    fn clone(&self) -> Relation {
        // Indexes are immutable snapshots keyed by `version`, so the
        // clone can share them via `Arc`: a cloned relation serves
        // cached probes without rebuilding, and its own inserts bump
        // `version` which invalidates the shared entries for the clone
        // only (the original keeps serving them at its version).
        let cache = self.index_cache.lock().expect("index cache lock poisoned").clone();
        Relation {
            arity: self.arity,
            rows: self.rows.clone(),
            seen: self.seen.clone(),
            version: self.version,
            index_cache: Mutex::new(cache),
        }
    }
}

impl fmt::Debug for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Relation")
            .field("arity", &self.arity)
            .field("len", &self.rows.len())
            .finish()
    }
}

impl PartialEq for Relation {
    /// Set equality (order-insensitive).
    fn eq(&self, other: &Relation) -> bool {
        self.arity == other.arity
            && self.rows.len() == other.rows.len()
            && self.rows.iter().all(|t| other.contains(t))
    }
}

impl FromIterator<Tuple> for Relation {
    /// Collects tuples; panics on an empty iterator (arity unknown) —
    /// prefer [`Relation::from_tuples`] when emptiness is possible.
    fn from_iter<I: IntoIterator<Item = Tuple>>(iter: I) -> Relation {
        let mut it = iter.into_iter().peekable();
        let arity = it.peek().expect("cannot infer arity of empty relation").arity();
        Relation::from_tuples(arity, it)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_deduplicates() {
        let mut r = Relation::new(2);
        assert!(r.insert(Tuple::ints(&[1, 2])));
        assert!(!r.insert(Tuple::ints(&[1, 2])));
        assert!(r.insert(Tuple::ints(&[1, 3])));
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn iteration_preserves_insertion_order() {
        let mut r = Relation::new(1);
        for i in (0..10).rev() {
            r.insert(Tuple::ints(&[i]));
        }
        let got: Vec<i64> = r
            .iter()
            .map(|t| t.get(0).clone())
            .map(|t| match t {
                ldl_core::Term::Const(ldl_core::Value::Int(i)) => i,
                _ => panic!(),
            })
            .collect();
        assert_eq!(got, (0..10).rev().collect::<Vec<_>>());
    }

    #[test]
    fn index_probe_finds_rows() {
        let mut r = Relation::new(2);
        r.insert(Tuple::ints(&[1, 10]));
        r.insert(Tuple::ints(&[1, 20]));
        r.insert(Tuple::ints(&[2, 30]));
        let idx = r.index_on(&[0]);
        assert_eq!(idx.probe(&[Term::int(1)]).len(), 2);
        assert_eq!(idx.probe(&[Term::int(2)]).len(), 1);
        assert_eq!(idx.probe(&[Term::int(9)]).len(), 0);
        assert_eq!(idx.distinct_keys(), 2);
    }

    #[test]
    fn index_invalidated_on_insert() {
        let mut r = Relation::new(1);
        r.insert(Tuple::ints(&[1]));
        let idx = r.index_on(&[0]);
        assert_eq!(idx.probe(&[Term::int(2)]).len(), 0);
        r.insert(Tuple::ints(&[2]));
        let idx2 = r.index_on(&[0]);
        assert_eq!(idx2.probe(&[Term::int(2)]).len(), 1);
    }

    #[test]
    fn multi_column_index() {
        let mut r = Relation::new(3);
        r.insert(Tuple::ints(&[1, 2, 3]));
        r.insert(Tuple::ints(&[1, 2, 4]));
        r.insert(Tuple::ints(&[1, 5, 3]));
        let idx = r.index_on(&[0, 1]);
        assert_eq!(idx.probe(&[Term::int(1), Term::int(2)]).len(), 2);
    }

    #[test]
    fn set_equality_ignores_order() {
        let a = Relation::from_tuples(1, [Tuple::ints(&[1]), Tuple::ints(&[2])]);
        let b = Relation::from_tuples(1, [Tuple::ints(&[2]), Tuple::ints(&[1])]);
        assert_eq!(a, b);
    }

    #[test]
    fn distinct_in_col() {
        let r = Relation::from_tuples(
            2,
            [Tuple::ints(&[1, 1]), Tuple::ints(&[1, 2]), Tuple::ints(&[2, 2])],
        );
        assert_eq!(r.distinct_in_col(0), 2);
        assert_eq!(r.distinct_in_col(1), 2);
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn arity_mismatch_panics() {
        let mut r = Relation::new(2);
        r.insert(Tuple::ints(&[1]));
    }

    #[test]
    fn clone_serves_prebuilt_index_without_rebuilding() {
        let mut r = Relation::new(2);
        r.insert(Tuple::ints(&[1, 10]));
        r.insert(Tuple::ints(&[2, 20]));
        let idx = r.index_on(&[0]);
        let c = r.clone();
        // The clone answers from the same snapshot, not a rebuild.
        assert!(Arc::ptr_eq(&idx, &c.index_on(&[0])));
        assert_eq!(c.index_on(&[0]).probe(&[Term::int(2)]).len(), 1);
    }

    #[test]
    fn clone_invalidates_shared_index_after_insert() {
        let mut r = Relation::new(1);
        r.insert(Tuple::ints(&[1]));
        let idx = r.index_on(&[0]);
        let mut c = r.clone();
        c.insert(Tuple::ints(&[2]));
        let idx2 = c.index_on(&[0]);
        assert!(!Arc::ptr_eq(&idx, &idx2));
        assert_eq!(idx2.probe(&[Term::int(2)]).len(), 1);
        // The original still serves its own (valid) snapshot.
        assert!(Arc::ptr_eq(&idx, &r.index_on(&[0])));
    }
}
