//! Bulk loading and dumping of relations (TSV/CSV).
//!
//! LDL is aimed at *data intensive* applications: base relations
//! normally arrive as files, not as inline facts. The loader reads
//! delimiter-separated values — integers where a field parses as one,
//! symbolic constants otherwise — and the dumper writes the same format
//! back, so relations round-trip.

use crate::relation::Relation;
use crate::tuple::Tuple;
use ldl_core::{LdlError, Pred, Result, Term, Value};
use std::io::{BufRead, Write};

/// Parses one field: integer if it parses as `i64`, symbol otherwise.
fn parse_field(s: &str) -> Term {
    match s.trim().parse::<i64>() {
        Ok(i) => Term::Const(Value::Int(i)),
        Err(_) => Term::Const(Value::sym(s.trim())),
    }
}

/// Reads a relation from delimiter-separated text. Empty lines and lines
/// starting with `#` are skipped; every data line must have exactly
/// `arity` fields.
pub fn read_relation(reader: impl BufRead, arity: usize, delimiter: char) -> Result<Relation> {
    let mut rel = Relation::new(arity);
    for (lineno, line) in reader.lines().enumerate() {
        let line = line.map_err(|e| LdlError::Eval(format!("read error: {e}")))?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = trimmed.split(delimiter).collect();
        if fields.len() != arity {
            return Err(LdlError::Validation(format!(
                "line {}: expected {arity} fields, found {}",
                lineno + 1,
                fields.len()
            )));
        }
        rel.insert(Tuple::new(fields.into_iter().map(parse_field).collect()));
    }
    Ok(rel)
}

/// Writes a relation as delimiter-separated text (scalar columns only;
/// compound terms are written in functional notation and will reload as
/// symbols, so prefer facts-in-program for complex-term relations).
pub fn write_relation(rel: &Relation, mut writer: impl Write, delimiter: char) -> Result<()> {
    for row in rel.iter() {
        let fields: Vec<String> = row.0.iter().map(|t| t.to_string()).collect();
        writeln!(writer, "{}", fields.join(&delimiter.to_string()))
            .map_err(|e| LdlError::Eval(format!("write error: {e}")))?;
    }
    Ok(())
}

impl crate::catalog::Database {
    /// Loads a TSV file (tab-separated) into the relation for `pred`.
    pub fn load_tsv(&mut self, pred: Pred, reader: impl BufRead) -> Result<usize> {
        let rel = read_relation(reader, pred.arity, '\t')?;
        let n = rel.len();
        self.set_relation(pred, rel);
        Ok(n)
    }

    /// Loads a CSV file (comma-separated) into the relation for `pred`.
    pub fn load_csv(&mut self, pred: Pred, reader: impl BufRead) -> Result<usize> {
        let rel = read_relation(reader, pred.arity, ',')?;
        let n = rel.len();
        self.set_relation(pred, rel);
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Database;
    use std::io::Cursor;

    #[test]
    fn reads_ints_and_symbols() {
        let data = "1\talice\n2\tbob\n";
        let rel = read_relation(Cursor::new(data), 2, '\t').unwrap();
        assert_eq!(rel.len(), 2);
        assert!(rel.contains(&Tuple::new(vec![Term::int(1), Term::sym("alice")])));
    }

    #[test]
    fn skips_comments_and_blanks() {
        let data = "# header\n\n1,2\n\n# trailing\n3,4\n";
        let rel = read_relation(Cursor::new(data), 2, ',').unwrap();
        assert_eq!(rel.len(), 2);
    }

    #[test]
    fn arity_mismatch_is_an_error_with_line_number() {
        let data = "1\t2\n1\t2\t3\n";
        let err = read_relation(Cursor::new(data), 2, '\t').unwrap_err();
        assert!(err.to_string().contains("line 2"), "{err}");
    }

    #[test]
    fn duplicates_collapse() {
        let data = "1,2\n1,2\n1,3\n";
        let rel = read_relation(Cursor::new(data), 2, ',').unwrap();
        assert_eq!(rel.len(), 2);
    }

    #[test]
    fn round_trip() {
        let data = "1\tx\n2\ty\n";
        let rel = read_relation(Cursor::new(data), 2, '\t').unwrap();
        let mut out = Vec::new();
        write_relation(&rel, &mut out, '\t').unwrap();
        let rel2 = read_relation(Cursor::new(out), 2, '\t').unwrap();
        assert_eq!(rel, rel2);
    }

    #[test]
    fn database_load_tsv() {
        let mut db = Database::new();
        let pred = Pred::new("edge", 2);
        let n = db.load_tsv(pred, Cursor::new("1\t2\n2\t3\n")).unwrap();
        assert_eq!(n, 2);
        assert_eq!(db.relation(pred).unwrap().len(), 2);
        assert_eq!(db.stats(pred).cardinality, 2.0);
    }

    #[test]
    fn negative_integers_parse() {
        let rel = read_relation(Cursor::new("-5,-10\n"), 2, ',').unwrap();
        assert!(rel.contains(&Tuple::ints(&[-5, -10])));
    }
}
