//! Database statistics.
//!
//! §6 of the paper treats cost formulae as a black box fed by "database
//! statistics and various estimates". We keep the classic Selinger-style
//! statistics: relation cardinality and per-column distinct-value counts,
//! from which the optimizer derives selectivities. Statistics can be
//! *measured* from a materialized relation or supplied *synthetically*
//! (the [Vil 87]-style experiments sample random database states without
//! materializing data).

use crate::relation::Relation;

/// Statistics for one relation.
#[derive(Clone, Debug, PartialEq)]
pub struct Stats {
    /// Estimated number of tuples.
    pub cardinality: f64,
    /// Estimated distinct values per column; `distinct[i] <= cardinality`.
    pub distinct: Vec<f64>,
}

impl Stats {
    /// Measures exact statistics from a relation.
    pub fn measure(rel: &Relation) -> Stats {
        let n = rel.len() as f64;
        let distinct = (0..rel.arity())
            .map(|c| rel.distinct_in_col(c) as f64)
            .collect();
        Stats {
            cardinality: n,
            distinct,
        }
    }

    /// Synthetic statistics: `cardinality` tuples, each column with the
    /// given distinct count (clamped to the cardinality).
    ///
    /// Non-finite inputs are *infectious*: any `∞` or `NaN` (the stats
    /// of an unsafe plan) yields uniformly infinite statistics instead
    /// of being laundered into finite values by the clamps — `NaN.max`
    /// and `NaN.min` silently return the other operand, which is
    /// exactly how an unsafe subplan used to cost out as free.
    pub fn synthetic(cardinality: f64, distinct: Vec<f64>) -> Stats {
        if !cardinality.is_finite() || distinct.iter().any(|d| !d.is_finite()) {
            let n = distinct.len();
            return Stats {
                cardinality: f64::INFINITY,
                distinct: vec![f64::INFINITY; n],
            };
        }
        let distinct = distinct
            .into_iter()
            .map(|d| d.min(cardinality).max(1.0))
            .collect();
        Stats {
            cardinality: cardinality.max(0.0),
            distinct,
        }
    }

    /// Uniform synthetic statistics: every column has `d` distinct values.
    pub fn uniform(cardinality: f64, arity: usize, d: f64) -> Stats {
        Stats::synthetic(cardinality, vec![d; arity])
    }

    /// Number of columns covered.
    pub fn arity(&self) -> usize {
        self.distinct.len()
    }

    /// Are all statistics finite? False for the `∞`/`NaN` statistics of
    /// an unsafe plan; cost models must treat such stats as unsafe
    /// rather than deriving selectivities from them (`1/∞ = 0` turns an
    /// infinite plan free downstream).
    pub fn is_finite(&self) -> bool {
        self.cardinality.is_finite() && self.distinct.iter().all(|d| d.is_finite())
    }

    /// Selectivity of an equality predicate `col = constant` under the
    /// uniform-distribution assumption: `1 / distinct[col]`.
    pub fn eq_selectivity(&self, col: usize) -> f64 {
        let d = self.distinct.get(col).copied().unwrap_or(1.0);
        if d <= 0.0 {
            1.0
        } else {
            (1.0 / d).min(1.0)
        }
    }

    /// Join selectivity between `self.col` and `other.col2`:
    /// `1 / max(d1, d2)` (System R).
    pub fn join_selectivity(&self, col: usize, other: &Stats, col2: usize) -> f64 {
        let d1 = self.distinct.get(col).copied().unwrap_or(1.0);
        let d2 = other.distinct.get(col2).copied().unwrap_or(1.0);
        let m = d1.max(d2).max(1.0);
        (1.0 / m).min(1.0)
    }

    /// Statistics for the projection of this relation onto `cols`,
    /// assuming independence: cardinality min(n, prod distinct).
    pub fn project(&self, cols: &[usize]) -> Stats {
        let distinct: Vec<f64> = cols
            .iter()
            .map(|&c| self.distinct.get(c).copied().unwrap_or(1.0))
            .collect();
        let prod: f64 = distinct.iter().product();
        Stats {
            cardinality: self.cardinality.min(prod.max(1.0)),
            distinct,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple::Tuple;

    #[test]
    fn measure_counts_distincts() {
        let r = Relation::from_tuples(
            2,
            [
                Tuple::ints(&[1, 1]),
                Tuple::ints(&[1, 2]),
                Tuple::ints(&[2, 3]),
            ],
        );
        let s = Stats::measure(&r);
        assert_eq!(s.cardinality, 3.0);
        assert_eq!(s.distinct, vec![2.0, 3.0]);
    }

    #[test]
    fn synthetic_clamps() {
        let s = Stats::synthetic(10.0, vec![100.0, 0.0]);
        assert_eq!(s.distinct, vec![10.0, 1.0]);
    }

    #[test]
    fn eq_selectivity_is_inverse_distinct() {
        let s = Stats::uniform(1000.0, 2, 50.0);
        assert!((s.eq_selectivity(0) - 0.02).abs() < 1e-12);
    }

    #[test]
    fn join_selectivity_uses_max() {
        let a = Stats::uniform(1000.0, 1, 10.0);
        let b = Stats::uniform(500.0, 1, 40.0);
        assert!((a.join_selectivity(0, &b, 0) - 1.0 / 40.0).abs() < 1e-12);
    }

    #[test]
    fn non_finite_synthetic_stats_stay_non_finite() {
        for bad in [f64::INFINITY, f64::NAN] {
            let s = Stats::synthetic(bad, vec![10.0, 20.0]);
            assert!(!s.is_finite());
            assert!(s.cardinality.is_infinite());
            let t = Stats::synthetic(100.0, vec![bad, 5.0]);
            assert!(!t.is_finite(), "distinct {bad} laundered to finite");
        }
        // Projection cannot re-finite them either.
        let u = Stats::uniform(f64::INFINITY, 3, f64::INFINITY);
        assert!(!u.project(&[0, 2]).is_finite());
    }

    #[test]
    fn finite_stats_report_finite() {
        assert!(Stats::uniform(1000.0, 2, 50.0).is_finite());
        assert!(Stats::measure(&Relation::new(2)).is_finite());
    }

    #[test]
    fn projection_caps_cardinality() {
        let s = Stats::synthetic(1000.0, vec![5.0, 10.0]);
        let p = s.project(&[0]);
        assert_eq!(p.cardinality, 5.0);
        let q = s.project(&[0, 1]);
        assert_eq!(q.cardinality, 50.0);
    }
}
