//! # ldl-storage — the database substrate
//!
//! The paper's knowledge base pairs a rule base with a *database* of base
//! relations, and its optimizer consumes "knowledge of storage structures
//! \[and\] database statistics" (§1). This crate provides that substrate:
//!
//! * [`tuple::Tuple`] — rows of ground [`ldl_core::Term`]s (LDL relations
//!   may hold complex terms, not just flat values);
//! * [`relation::Relation`] — duplicate-free, insertion-ordered tuple
//!   sets with lazily cached hash indexes on column subsets;
//! * [`stats::Stats`] — cardinality and per-column distinct counts, either
//!   computed from data or supplied synthetically for optimizer-only
//!   experiments;
//! * [`catalog::Database`] — the named collection of base relations the
//!   evaluator and optimizer share.

pub mod catalog;
pub mod codec;
pub mod loader;
pub mod relation;
pub mod stats;
pub mod tuple;

pub use catalog::Database;
pub use relation::counters::{note_rows_enumerated, scope_handle, IndexCounters, ScopeHandle};
pub use relation::{ColClass, Index, OrderedIndex, Relation, SupportCounts};
pub use stats::Stats;
pub use tuple::Tuple;
