//! The database catalog: named base relations plus their statistics.

use crate::relation::Relation;
use crate::stats::Stats;
use crate::tuple::Tuple;
use ldl_core::{LdlError, Pred, Program, Result};
use std::collections::HashMap;

/// A named collection of base relations.
///
/// The evaluator reads relations; the optimizer reads statistics. For
/// optimizer-only experiments a relation may have synthetic statistics
/// and no data at all.
#[derive(Clone, Debug, Default)]
pub struct Database {
    relations: HashMap<Pred, Relation>,
    stats_overrides: HashMap<Pred, Stats>,
}

impl Database {
    /// Empty database.
    pub fn new() -> Database {
        Database::default()
    }

    /// Loads every ground fact of a program into its base relation.
    pub fn from_program(program: &Program) -> Database {
        let mut db = Database::new();
        db.load_facts(program);
        db
    }

    /// Adds the program's facts to the existing relations.
    pub fn load_facts(&mut self, program: &Program) {
        for fact in &program.facts {
            let rel = self
                .relations
                .entry(fact.pred)
                .or_insert_with(|| Relation::new(fact.pred.arity));
            rel.insert(Tuple::new(fact.args.clone()));
        }
    }

    /// Installs (or replaces) a relation.
    pub fn set_relation(&mut self, pred: Pred, rel: Relation) {
        assert_eq!(
            pred.arity,
            rel.arity(),
            "relation arity must match predicate"
        );
        self.relations.insert(pred, rel);
    }

    /// The relation for `pred`, if present.
    pub fn relation(&self, pred: Pred) -> Option<&Relation> {
        self.relations.get(&pred)
    }

    /// The relation for `pred`, or an error naming it.
    pub fn require(&self, pred: Pred) -> Result<&Relation> {
        self.relations
            .get(&pred)
            .ok_or_else(|| LdlError::Eval(format!("no relation for base predicate {pred}")))
    }

    /// Mutable access, creating an empty relation if absent.
    pub fn relation_mut(&mut self, pred: Pred) -> &mut Relation {
        self.relations
            .entry(pred)
            .or_insert_with(|| Relation::new(pred.arity))
    }

    /// Inserts one tuple into `pred`'s relation.
    pub fn insert(&mut self, pred: Pred, t: Tuple) -> bool {
        self.relation_mut(pred).insert(t)
    }

    /// Declares synthetic statistics for `pred` (used by optimizer-only
    /// experiments; takes precedence over measured statistics).
    pub fn set_stats(&mut self, pred: Pred, stats: Stats) {
        assert_eq!(
            pred.arity,
            stats.arity(),
            "stats arity must match predicate"
        );
        self.stats_overrides.insert(pred, stats);
    }

    /// Statistics for `pred`: the synthetic override if any, else measured
    /// from data, else a pessimistic default (1000 tuples, 100 distinct
    /// per column) so that unknown relations never look free.
    pub fn stats(&self, pred: Pred) -> Stats {
        if let Some(s) = self.stats_overrides.get(&pred) {
            return s.clone();
        }
        if let Some(r) = self.relations.get(&pred) {
            return Stats::measure(r);
        }
        Stats::uniform(1000.0, pred.arity, 100.0)
    }

    /// All predicates with a relation or stats entry.
    pub fn preds(&self) -> Vec<Pred> {
        let mut v: Vec<Pred> = self.relations.keys().copied().collect();
        for p in self.stats_overrides.keys() {
            if !v.contains(p) {
                v.push(*p);
            }
        }
        v.sort();
        v
    }

    /// Total number of stored tuples (across all relations).
    pub fn total_tuples(&self) -> usize {
        self.relations.values().map(Relation::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldl_core::parser::parse_program;

    #[test]
    fn loads_facts_by_predicate() {
        let p = parse_program(
            r#"
            up(1, 2). up(2, 3).
            dn(3, 4).
            "#,
        )
        .unwrap();
        let db = Database::from_program(&p);
        assert_eq!(db.relation(Pred::new("up", 2)).unwrap().len(), 2);
        assert_eq!(db.relation(Pred::new("dn", 2)).unwrap().len(), 1);
        assert_eq!(db.total_tuples(), 3);
    }

    #[test]
    fn duplicate_facts_deduplicated() {
        let p = parse_program("e(1, 2). e(1, 2).").unwrap();
        let db = Database::from_program(&p);
        assert_eq!(db.relation(Pred::new("e", 2)).unwrap().len(), 1);
    }

    #[test]
    fn stats_override_beats_measurement() {
        let p = parse_program("e(1, 2).").unwrap();
        let mut db = Database::from_program(&p);
        let pred = Pred::new("e", 2);
        assert_eq!(db.stats(pred).cardinality, 1.0);
        db.set_stats(pred, Stats::uniform(5000.0, 2, 100.0));
        assert_eq!(db.stats(pred).cardinality, 5000.0);
    }

    #[test]
    fn missing_relation_gets_default_stats() {
        let db = Database::new();
        let s = db.stats(Pred::new("ghost", 3));
        assert_eq!(s.cardinality, 1000.0);
        assert_eq!(s.arity(), 3);
    }

    #[test]
    fn require_reports_missing() {
        let db = Database::new();
        assert!(db.require(Pred::new("nope", 1)).is_err());
    }

    #[test]
    fn complex_term_facts_load() {
        let p = parse_program("part(bike, wheel(front)).").unwrap();
        let db = Database::from_program(&p);
        let r = db.relation(Pred::new("part", 2)).unwrap();
        assert_eq!(r.len(), 1);
        assert_eq!(r.rows()[0].get(1).to_string(), "wheel(front)");
    }
}
