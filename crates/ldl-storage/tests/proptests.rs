//! Property-based tests for the storage layer: relation set semantics,
//! index/scan agreement, statistics consistency, and loader round-trips.
//!
//! Runs on `ldl_support::prop`; replay any failure with the
//! `LDL_PROP_SEED` value printed in the panic message.

use ldl_core::Term;
use ldl_storage::{loader, Relation, Stats, Tuple};
use ldl_support::prop::{check, i64s, pairs, vecs, Config, Gen};
use std::io::Cursor;

fn cfg() -> Config {
    Config::with_cases(64)
}

fn tuple_lists(arity: usize) -> Gen<Vec<Vec<i64>>> {
    vecs(vecs(i64s(-20..20), arity..arity + 1), 0..60)
}

/// Relations behave as sets: length equals the number of distinct
/// tuples; contains agrees with membership; re-inserting changes
/// nothing.
#[test]
fn relation_set_semantics() {
    check("relation_set_semantics", &cfg(), &tuple_lists(2), |rows| {
        let mut rel = Relation::new(2);
        for r in rows {
            rel.insert(Tuple::ints(r));
        }
        let mut distinct = rows.clone();
        distinct.sort();
        distinct.dedup();
        assert_eq!(rel.len(), distinct.len());
        for r in rows {
            assert!(rel.contains(&Tuple::ints(r)));
        }
        let before = rel.len();
        for r in rows {
            rel.insert(Tuple::ints(r));
        }
        assert_eq!(rel.len(), before);
    });
}

/// Index probes return exactly the rows a scan would find.
#[test]
fn index_agrees_with_scan() {
    let gen = pairs(tuple_lists(2), i64s(-20..20));
    check("index_agrees_with_scan", &cfg(), &gen, |(rows, key)| {
        let key = *key;
        let rel = Relation::from_tuples(2, rows.iter().map(|r| Tuple::ints(r)));
        let idx = rel.index_on(&[0]);
        let via_index: Vec<&Tuple> = idx
            .probe(&[Term::int(key)])
            .iter()
            .map(|&i| rel.row(i))
            .collect();
        let via_scan: Vec<&Tuple> = rel.iter().filter(|t| t.get(0) == &Term::int(key)).collect();
        assert_eq!(via_index.len(), via_scan.len());
        for t in via_scan {
            assert!(via_index.contains(&t));
        }
    });
}

/// Measured statistics are internally consistent: distinct counts
/// never exceed cardinality and are at least 1 for nonempty columns.
#[test]
fn stats_consistency() {
    check("stats_consistency", &cfg(), &tuple_lists(3), |rows| {
        let rel = Relation::from_tuples(3, rows.iter().map(|r| Tuple::ints(r)));
        let s = Stats::measure(&rel);
        assert_eq!(s.cardinality as usize, rel.len());
        for c in 0..3 {
            assert!(s.distinct[c] <= s.cardinality.max(0.0));
            if !rel.is_empty() {
                assert!(s.distinct[c] >= 1.0);
            }
            // Selectivity in (0, 1].
            let sel = s.eq_selectivity(c);
            assert!(sel > 0.0 && sel <= 1.0);
        }
    });
}

/// TSV write → read is the identity on integer relations.
#[test]
fn loader_round_trip() {
    check("loader_round_trip", &cfg(), &tuple_lists(2), |rows| {
        let rel = Relation::from_tuples(2, rows.iter().map(|r| Tuple::ints(r)));
        let mut buf = Vec::new();
        loader::write_relation(&rel, &mut buf, '\t').unwrap();
        let back = loader::read_relation(Cursor::new(buf), 2, '\t').unwrap();
        assert_eq!(rel, back);
    });
}

/// Version counter increments exactly on novel inserts, so cached
/// indexes can rely on it for staleness detection.
#[test]
fn version_tracks_novel_inserts() {
    check(
        "version_tracks_novel_inserts",
        &cfg(),
        &tuple_lists(1),
        |rows| {
            let mut rel = Relation::new(1);
            let mut expected = 0u64;
            let mut seen = std::collections::HashSet::new();
            for r in rows {
                if seen.insert(r.clone()) {
                    expected += 1;
                }
                rel.insert(Tuple::ints(r));
                assert_eq!(rel.version(), expected);
            }
        },
    );
}
