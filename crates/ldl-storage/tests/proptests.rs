//! Property-based tests for the storage layer: relation set semantics,
//! index/scan agreement, statistics consistency, and loader round-trips.
//!
//! Runs on `ldl_support::prop`; replay any failure with the
//! `LDL_PROP_SEED` value printed in the panic message.

use ldl_core::{Pred, Term};
use ldl_storage::codec::{self, Frame};
use ldl_storage::{loader, Database, Relation, Stats, Tuple};
use ldl_support::prop::{check, i64s, pairs, triples, usizes, vecs, Config, Gen};
use std::io::Cursor;

fn cfg() -> Config {
    Config::with_cases(64)
}

fn tuple_lists(arity: usize) -> Gen<Vec<Vec<i64>>> {
    vecs(vecs(i64s(-20..20), arity..arity + 1), 0..60)
}

/// Relations behave as sets: length equals the number of distinct
/// tuples; contains agrees with membership; re-inserting changes
/// nothing.
#[test]
fn relation_set_semantics() {
    check("relation_set_semantics", &cfg(), &tuple_lists(2), |rows| {
        let mut rel = Relation::new(2);
        for r in rows {
            rel.insert(Tuple::ints(r));
        }
        let mut distinct = rows.clone();
        distinct.sort();
        distinct.dedup();
        assert_eq!(rel.len(), distinct.len());
        for r in rows {
            assert!(rel.contains(&Tuple::ints(r)));
        }
        let before = rel.len();
        for r in rows {
            rel.insert(Tuple::ints(r));
        }
        assert_eq!(rel.len(), before);
    });
}

/// Index probes return exactly the rows a scan would find.
#[test]
fn index_agrees_with_scan() {
    let gen = pairs(tuple_lists(2), i64s(-20..20));
    check("index_agrees_with_scan", &cfg(), &gen, |(rows, key)| {
        let key = *key;
        let rel = Relation::from_tuples(2, rows.iter().map(|r| Tuple::ints(r)));
        let idx = rel.index_on(&[0]);
        let via_index: Vec<&Tuple> = idx
            .probe(&[Term::int(key)])
            .iter()
            .map(|&i| rel.row(i))
            .collect();
        let via_scan: Vec<&Tuple> = rel.iter().filter(|t| t.get(0) == &Term::int(key)).collect();
        assert_eq!(via_index.len(), via_scan.len());
        for t in via_scan {
            assert!(via_index.contains(&t));
        }
    });
}

/// Measured statistics are internally consistent: distinct counts
/// never exceed cardinality and are at least 1 for nonempty columns.
#[test]
fn stats_consistency() {
    check("stats_consistency", &cfg(), &tuple_lists(3), |rows| {
        let rel = Relation::from_tuples(3, rows.iter().map(|r| Tuple::ints(r)));
        let s = Stats::measure(&rel);
        assert_eq!(s.cardinality as usize, rel.len());
        for c in 0..3 {
            assert!(s.distinct[c] <= s.cardinality.max(0.0));
            if !rel.is_empty() {
                assert!(s.distinct[c] >= 1.0);
            }
            // Selectivity in (0, 1].
            let sel = s.eq_selectivity(c);
            assert!(sel > 0.0 && sel <= 1.0);
        }
    });
}

/// TSV write → read is the identity on integer relations.
#[test]
fn loader_round_trip() {
    check("loader_round_trip", &cfg(), &tuple_lists(2), |rows| {
        let rel = Relation::from_tuples(2, rows.iter().map(|r| Tuple::ints(r)));
        let mut buf = Vec::new();
        loader::write_relation(&rel, &mut buf, '\t').unwrap();
        let back = loader::read_relation(Cursor::new(buf), 2, '\t').unwrap();
        assert_eq!(rel, back);
    });
}

/// Version counter increments exactly on novel inserts, so cached
/// indexes can rely on it for staleness detection.
#[test]
fn version_tracks_novel_inserts() {
    check(
        "version_tracks_novel_inserts",
        &cfg(),
        &tuple_lists(1),
        |rows| {
            let mut rel = Relation::new(1);
            let mut expected = 0u64;
            let mut seen = std::collections::HashSet::new();
            for r in rows {
                if seen.insert(r.clone()) {
                    expected += 1;
                }
                rel.insert(Tuple::ints(r));
                assert_eq!(rel.version(), expected);
            }
        },
    );
}

/// Codec decode paths are total on hostile bytes: truncating an
/// encoded database at any point, or flipping any single bit, must
/// yield `Ok` or a clean `Err` — never a panic, and never an
/// allocation sized by an unvalidated length field. The clean bytes
/// must still round-trip exactly.
#[test]
fn codec_database_decode_survives_truncation_and_bitflips() {
    let gen = triples(tuple_lists(2), usizes(0..1 << 16), usizes(0..1 << 16));
    check(
        "codec_database_decode_survives_truncation_and_bitflips",
        &cfg(),
        &gen,
        |(rows, cut, flip)| {
            let mut db = Database::new();
            let e = Pred::new("e", 2);
            for r in rows {
                db.insert(e, Tuple::ints(r));
            }
            let bytes = codec::encode_database(&db);
            let back = codec::decode_database(&bytes).expect("clean decode");
            assert_eq!(codec::encode_database(&back), bytes, "round-trip identity");

            // Any prefix decodes totally (usually to an error).
            let _ = codec::decode_database(&bytes[..cut % (bytes.len() + 1)]);

            // Any single-bit flip decodes totally. A flip in a length
            // field may claim gigabytes — the decoder must refuse from
            // the remaining input, not allocate first.
            let mut corrupt = bytes.clone();
            let bit = flip % (corrupt.len() * 8);
            corrupt[bit / 8] ^= 1 << (bit % 8);
            if let Ok(mangled) = codec::decode_database(&corrupt) {
                // Accepted corruption must at least be self-consistent:
                // what decoded re-encodes to what was decoded from.
                assert_eq!(codec::encode_database(&mangled), corrupt);
            }
        },
    );
}

/// Frame reads are total on hostile bytes: any truncation of a valid
/// frame stream reads as `Torn` (or a shorter valid prefix), any
/// single-bit flip reads as `Torn` or an intact other frame
/// — never a panic, and a declared length far past the input must not
/// be allocated up front.
#[test]
fn codec_frame_reads_survive_truncation_and_bitflips() {
    let gen = triples(
        vecs(i64s(-128..128), 0..200),
        usizes(0..1 << 16),
        usizes(0..1 << 16),
    );
    check(
        "codec_frame_reads_survive_truncation_and_bitflips",
        &cfg(),
        &gen,
        |(payload_ints, cut, flip)| {
            let payload: Vec<u8> = payload_ints.iter().map(|i| *i as u8).collect();
            let mut bytes = Vec::new();
            codec::write_frame(&mut bytes, &payload).unwrap();
            match codec::read_frame(&mut Cursor::new(&bytes)).unwrap() {
                Frame::Payload(p) => assert_eq!(p, payload),
                other => panic!("clean frame read as {other:?}"),
            }

            // Truncation: never a payload longer than what was framed.
            let cut = cut % (bytes.len() + 1);
            match codec::read_frame(&mut Cursor::new(&bytes[..cut])).unwrap() {
                Frame::Payload(p) => {
                    assert_eq!(cut, bytes.len(), "payload out of a truncated frame");
                    assert_eq!(p, payload);
                }
                Frame::Torn | Frame::Eof => {}
            }

            // Bit flips: the CRC catches payload damage; header damage
            // may claim an absurd length, which must surface as Torn
            // without a matching up-front allocation.
            let mut corrupt = bytes.clone();
            let bit = flip % (corrupt.len() * 8);
            corrupt[bit / 8] ^= 1 << (bit % 8);
            match codec::read_frame(&mut Cursor::new(&corrupt)).unwrap() {
                Frame::Payload(p) => {
                    // Only possible if the flip landed in the length
                    // field AND the shorter/longer read still checks
                    // out — with CRC-32 over the payload a single-bit
                    // flip cannot do that.
                    panic!("single-bit flip accepted as a valid frame: {p:?}")
                }
                Frame::Torn | Frame::Eof => {}
            }
        },
    );
}
