//! Property-based tests for the storage layer: relation set semantics,
//! index/scan agreement, statistics consistency, and loader round-trips.

use ldl_core::Term;
use ldl_storage::{loader, Relation, Stats, Tuple};
use proptest::prelude::*;
use std::io::Cursor;

fn arb_tuples(arity: usize) -> impl Strategy<Value = Vec<Vec<i64>>> {
    proptest::collection::vec(proptest::collection::vec(-20i64..20, arity..=arity), 0..60)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Relations behave as sets: length equals the number of distinct
    /// tuples; contains agrees with membership; re-inserting changes
    /// nothing.
    #[test]
    fn relation_set_semantics(rows in arb_tuples(2)) {
        let mut rel = Relation::new(2);
        for r in &rows {
            rel.insert(Tuple::ints(r));
        }
        let mut distinct = rows.clone();
        distinct.sort();
        distinct.dedup();
        prop_assert_eq!(rel.len(), distinct.len());
        for r in &rows {
            prop_assert!(rel.contains(&Tuple::ints(r)));
        }
        let before = rel.len();
        for r in &rows {
            rel.insert(Tuple::ints(r));
        }
        prop_assert_eq!(rel.len(), before);
    }

    /// Index probes return exactly the rows a scan would find.
    #[test]
    fn index_agrees_with_scan(rows in arb_tuples(2), key in -20i64..20) {
        let rel = Relation::from_tuples(2, rows.iter().map(|r| Tuple::ints(r)));
        let idx = rel.index_on(&[0]);
        let via_index: Vec<&Tuple> =
            idx.probe(&[Term::int(key)]).iter().map(|&i| rel.row(i)).collect();
        let via_scan: Vec<&Tuple> =
            rel.iter().filter(|t| t.get(0) == &Term::int(key)).collect();
        prop_assert_eq!(via_index.len(), via_scan.len());
        for t in via_scan {
            prop_assert!(via_index.contains(&t));
        }
    }

    /// Measured statistics are internally consistent: distinct counts
    /// never exceed cardinality and are at least 1 for nonempty columns.
    #[test]
    fn stats_consistency(rows in arb_tuples(3)) {
        let rel = Relation::from_tuples(3, rows.iter().map(|r| Tuple::ints(r)));
        let s = Stats::measure(&rel);
        prop_assert_eq!(s.cardinality as usize, rel.len());
        for c in 0..3 {
            prop_assert!(s.distinct[c] <= s.cardinality.max(0.0));
            if !rel.is_empty() {
                prop_assert!(s.distinct[c] >= 1.0);
            }
            // Selectivity in (0, 1].
            let sel = s.eq_selectivity(c);
            prop_assert!(sel > 0.0 && sel <= 1.0);
        }
    }

    /// TSV write → read is the identity on integer relations.
    #[test]
    fn loader_round_trip(rows in arb_tuples(2)) {
        let rel = Relation::from_tuples(2, rows.iter().map(|r| Tuple::ints(r)));
        let mut buf = Vec::new();
        loader::write_relation(&rel, &mut buf, '\t').unwrap();
        let back = loader::read_relation(Cursor::new(buf), 2, '\t').unwrap();
        prop_assert_eq!(rel, back);
    }

    /// Version counter increments exactly on novel inserts, so cached
    /// indexes can rely on it for staleness detection.
    #[test]
    fn version_tracks_novel_inserts(rows in arb_tuples(1)) {
        let mut rel = Relation::new(1);
        let mut expected = 0u64;
        let mut seen = std::collections::HashSet::new();
        for r in &rows {
            if seen.insert(r.clone()) {
                expected += 1;
            }
            rel.insert(Tuple::ints(r));
            prop_assert_eq!(rel.version(), expected);
        }
    }
}
