//! Common subexpression generalization (§9, future work implemented).
//!
//! The paper closes with: "let both goals P(a,b,X) and P(a,Y,c) occur in
//! a query. Then it is conceivable that computing P(a,Y,X) once and
//! restricting the result for each of the cases may be more efficient."
//!
//! This module finds such opportunities by *anti-unification*: pairs of
//! same-predicate goals whose least general generalization (lgg) still
//! carries restricting structure (constants or compound terms) become
//! candidates. Applying a candidate introduces a shared predicate
//! defined by the generalized goal and rewrites each occurrence into a
//! call of it — the optimizer's per-binding memo then prices the shared
//! computation once, and the evaluator materializes it once.

use ldl_core::unify::{mgu_atoms, Lgg};
use ldl_core::{Atom, LdlError, Literal, Pred, Program, Result, Span, Symbol, Term};
use std::collections::BTreeSet;

/// A detected sharing opportunity.
#[derive(Clone, Debug)]
pub struct CseCandidate {
    /// The predicate both goals query.
    pub pred: Pred,
    /// The generalized goal covering every occurrence.
    pub generalized: Atom,
    /// `(rule index, body literal index)` of each covered occurrence.
    pub occurrences: Vec<(usize, usize)>,
}

impl CseCandidate {
    /// Restricting positions: arguments of the generalization that are
    /// not plain variables (the structure every occurrence shares).
    pub fn restricting_args(&self) -> usize {
        self.generalized.args.iter().filter(|t| !t.is_var()).count()
    }
}

/// Scans the program for pairs of positive same-predicate goals (in any
/// rule bodies) whose generalization retains at least one non-variable
/// argument. Candidates are reported most-restricting first.
pub fn find_candidates(program: &Program) -> Vec<CseCandidate> {
    // Collect all positive occurrences of derived or base predicates.
    let mut occ: Vec<(usize, usize, &Atom)> = Vec::new();
    for (ri, rule) in program.rules.iter().enumerate() {
        for (li, lit) in rule.body.iter().enumerate() {
            if let Literal::Atom(a) = lit {
                if !a.negated {
                    occ.push((ri, li, a));
                }
            }
        }
    }
    let mut out: Vec<CseCandidate> = Vec::new();
    for i in 0..occ.len() {
        for j in i + 1..occ.len() {
            let (r1, l1, a1) = occ[i];
            let (r2, l2, a2) = occ[j];
            if (r1, l1) == (r2, l2) || a1.pred != a2.pred {
                continue;
            }
            let Some(g) = Lgg::new().atoms(a1, a2) else {
                continue;
            };
            let restricting = g.args.iter().filter(|t| !t.is_var()).count();
            if restricting == 0 {
                continue; // all-free generalization shares nothing
            }
            // Identical goals are sharing opportunities too, but the
            // optimizer's memo already covers them; prefer reporting
            // strictly-generalizing pairs first.
            out.push(CseCandidate {
                pred: a1.pred,
                generalized: g,
                occurrences: vec![(r1, l1), (r2, l2)],
            });
        }
    }
    out.sort_by(|a, b| {
        b.restricting_args()
            .cmp(&a.restricting_args())
            .then(a.occurrences.cmp(&b.occurrences))
    });
    out
}

/// Applies a candidate: adds
/// `cse_<n>(V1..Vk) <- P(generalized args).` (the `Vi` being the
/// generalization's variables) and replaces each occurrence
/// `P(args) = generalized·θ` with `cse_<n>(θ(V1)..θ(Vk))`.
pub fn apply(program: &Program, candidate: &CseCandidate, index: usize) -> Result<Program> {
    let vars: Vec<Symbol> = candidate.generalized.vars();
    let shared_pred = Pred {
        name: Symbol::intern(&format!("cse_{index}_{}", candidate.pred.name)),
        arity: vars.len(),
    };
    let mut out = program.clone();
    // Defining rule.
    let head = Atom {
        pred: shared_pred,
        args: vars.iter().map(|&v| Term::Var(v)).collect(),
        negated: false,
        span: Span::NONE,
    };
    out.rules.push(ldl_core::Rule::new(
        head,
        vec![Literal::Atom(candidate.generalized.clone())],
    ));

    // Rewrite occurrences.
    let occs: BTreeSet<(usize, usize)> = candidate.occurrences.iter().copied().collect();
    for &(ri, li) in &occs {
        let rule = out
            .rules
            .get_mut(ri)
            .ok_or_else(|| LdlError::Validation(format!("rule {ri} out of range")))?;
        let Literal::Atom(a) = &rule.body[li] else {
            return Err(LdlError::Validation(format!(
                "literal {ri}/{li} is not an atom"
            )));
        };
        // occurrence = generalized · θ (match, not unify: the occurrence
        // must be an instance).
        let theta = mgu_atoms(&candidate.generalized, a).ok_or_else(|| {
            LdlError::Validation(format!(
                "occurrence {a} is not an instance of {}",
                candidate.generalized
            ))
        })?;
        let new_args: Vec<Term> = vars.iter().map(|&v| theta.apply(&Term::Var(v))).collect();
        rule.body[li] = Literal::Atom(Atom {
            pred: shared_pred,
            args: new_args,
            negated: false,
            span: Span::NONE,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldl_core::parser::{parse_program, parse_query};
    use ldl_eval::{evaluate_query, FixpointConfig, Method};
    use ldl_storage::Database;

    #[test]
    fn finds_paper_section_9_pair() {
        let program = parse_program(
            r#"
            q(X, Y) <- p(a, b, X), p(a, Y, c).
            p(A, B, C) <- e(A, B, C).
            "#,
        )
        .unwrap();
        let cands = find_candidates(&program);
        let best = cands
            .iter()
            .find(|c| c.pred == Pred::new("p", 3))
            .expect("p-pair candidate");
        // Generalization keeps the shared first argument `a`.
        assert_eq!(best.generalized.args[0], Term::sym("a"));
        assert!(best.generalized.args[1].is_var());
        assert!(best.generalized.args[2].is_var());
        assert_eq!(best.restricting_args(), 1);
    }

    #[test]
    fn no_candidates_without_shared_structure() {
        let program = parse_program("q(X, Y) <- p(X), r(Y).").unwrap();
        assert!(find_candidates(&program).is_empty());
    }

    #[test]
    fn apply_preserves_semantics() {
        let text = r#"
            e(a, b, 1). e(a, b, 2). e(a, x, c). e(z, z, z).
            p(A, B, C) <- e(A, B, C).
            q(X, Y) <- p(a, b, X), p(a, Y, c).
        "#;
        let program = parse_program(text).unwrap();
        let db = Database::from_program(&program);
        let query = parse_query("q(X, Y)?").unwrap();
        let cfg = FixpointConfig::default();
        let before = evaluate_query(&program, &db, &query, Method::SemiNaive, &cfg)
            .unwrap()
            .tuples;
        // q(X, Y): X from e(a,b,X) = {1, 2}; Y from e(a,Y,c) = {x}.
        assert_eq!(before.len(), 2);

        let cands = find_candidates(&program);
        let cand = cands
            .iter()
            .find(|c| c.pred == Pred::new("p", 3) && c.occurrences.len() == 2)
            .unwrap();
        let rewritten = apply(&program, cand, 0).unwrap();
        // One new rule; occurrences replaced.
        assert_eq!(rewritten.rules.len(), program.rules.len() + 1);
        let after = evaluate_query(&rewritten, &db, &query, Method::SemiNaive, &cfg)
            .unwrap()
            .tuples;
        assert_eq!(before, after);
    }

    #[test]
    fn shared_computation_is_memoized_by_the_optimizer() {
        // After CSE, both occurrences reference the SAME predicate with
        // the SAME binding pattern: the optimizer's per-binding memo
        // prices it once.
        let text = r#"
            p(A, B, C) <- e1(A, B), e2(B, C).
            q(X, Y) <- p(a, b, X), p(a, Y, c).
        "#;
        let program = parse_program(text).unwrap();
        let cand = find_candidates(&program)
            .into_iter()
            .find(|c| c.pred == Pred::new("p", 3))
            .unwrap();
        let rewritten = apply(&program, &cand, 0).unwrap();
        let db = Database::new();
        let opt = crate::opt::Optimizer::with_defaults(&rewritten, &db);
        let plan = opt.optimize(&parse_query("q(X, Y)?").unwrap()).unwrap();
        assert!(plan.cost.is_finite());
        assert!(opt.stats().memo_hits >= 1, "{:?}", opt.stats());
    }

    #[test]
    fn candidates_are_ranked_by_restriction() {
        let program = parse_program(
            r#"
            q(X) <- p(a, b, X), p(a, b, X), r(a, X), r(Y, X).
            p(A, B, C) <- e(A, B, C).
            r(A, B) <- f(A, B).
            "#,
        )
        .unwrap();
        let cands = find_candidates(&program);
        assert!(!cands.is_empty());
        for w in cands.windows(2) {
            assert!(w[0].restricting_args() >= w[1].restricting_args());
        }
    }
}
