//! The cost model.
//!
//! §6 of the paper deliberately treats cost formulae as a black box: the
//! model must (1) be monotonically increasing in operand sizes, (2)
//! assign *infinite* cost to unsafe executions, and (3) differentiate
//! good executions from bad ones — exact constants matter much less than
//! orderings. [`CostParams`] collects every constant in one place so the
//! ablation benches can vary them.

use ldl_storage::Stats;
use std::fmt;

/// Cost of an unsafe (non-terminating) execution.
pub const INFINITE_COST: f64 = f64::INFINITY;

/// Tunable constants of the default cost model.
#[derive(Clone, Debug)]
pub struct CostParams {
    /// CPU weight per tuple touched by a builtin or filter.
    pub cpu_per_tuple: f64,
    /// Selectivity assumed for an inequality filter (`X > c`, ...).
    pub ineq_selectivity: f64,
    /// Selectivity assumed for an equality filter between bound terms.
    pub eq_selectivity: f64,
    /// Selectivity assumed for a negated (ground) literal.
    pub neg_selectivity: f64,
    /// Estimated number of fixpoint iterations a recursive clique runs
    /// (used to price naive re-derivation and clique growth).
    pub fixpoint_depth: f64,
    /// Multiplier expressing how much of a clique a bound query actually
    /// reaches under magic sets (the "reachable fraction" amplifier on
    /// top of the per-binding selectivity).
    pub magic_reach: f64,
    /// Relative advantage of counting over magic on linear cliques
    /// (avoids the answer/binding re-join).
    pub counting_advantage: f64,
    /// Exponent used to guess per-column distinct counts of derived
    /// relations from their cardinality.
    pub derived_distinct_exp: f64,
    /// Cap on any cardinality estimate (keeps arithmetic finite while
    /// still dwarfing every realistic plan).
    pub cardinality_cap: f64,
}

impl Default for CostParams {
    fn default() -> Self {
        CostParams {
            cpu_per_tuple: 0.01,
            ineq_selectivity: 1.0 / 3.0,
            eq_selectivity: 0.1,
            neg_selectivity: 0.5,
            fixpoint_depth: 10.0,
            magic_reach: 20.0,
            counting_advantage: 0.7,
            derived_distinct_exp: 0.75,
            cardinality_cap: 1e15,
        }
    }
}

/// Cost estimate for a (sub)plan serving one binding pattern.
///
/// `fanout` is the expected number of result tuples *per binding tuple*
/// (for an all-free pattern this is simply the cardinality); `setup` is
/// the one-time cost of materializing the restricted relation; `probe`
/// is the per-binding cost of consuming it. `stats` approximates the
/// result's column statistics for downstream selectivity estimation.
#[derive(Clone, Debug)]
pub struct PlanCost {
    /// One-time materialization cost.
    pub setup: f64,
    /// Per-binding-tuple retrieval cost.
    pub probe: f64,
    /// Expected matching tuples per binding tuple.
    pub fanout: f64,
    /// Column statistics of the (unrestricted) result.
    pub stats: Stats,
}

impl PlanCost {
    /// An infinitely expensive (unsafe) plan.
    pub fn unsafe_plan(arity: usize) -> PlanCost {
        PlanCost {
            setup: INFINITE_COST,
            probe: INFINITE_COST,
            fanout: INFINITE_COST,
            stats: Stats::uniform(INFINITE_COST, arity, INFINITE_COST),
        }
    }

    /// Is this plan unsafe (infinite cost anywhere)? Non-finite result
    /// *statistics* count too: stats are inputs to downstream
    /// selectivity arithmetic, and `1/∞ = 0` would otherwise let an
    /// unsafe subplan cost out as free in a later `base_access`.
    pub fn is_unsafe(&self) -> bool {
        !self.setup.is_finite()
            || !self.probe.is_finite()
            || !self.fanout.is_finite()
            || !self.stats.is_finite()
    }

    /// Total cost of using the plan under `n` binding tuples.
    pub fn total(&self, n: f64) -> f64 {
        self.setup + n * self.probe
    }
}

impl fmt::Display for PlanCost {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "setup={:.2} probe={:.3} fanout={:.3}",
            self.setup, self.probe, self.fanout
        )
    }
}

/// The physical access path a predicate occurrence will use at run
/// time, as classified against the selected-index catalog (see
/// `ldl_index`). Distinguishing these lets the model price *index
/// reuse*: a selected ordered index is built once per relation version
/// no matter how many signatures share it, whereas each distinct
/// on-demand hash key set pays its own build.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AccessPath {
    /// No usable key: enumerate every tuple.
    FullScan,
    /// On-demand hash index on exactly the bound columns.
    HashProbe,
    /// Prefix probe of a selected lexicographic index (binary search).
    OrderedPrefix,
    /// Range probe of a selected lexicographic index (prefix equality
    /// plus inequality bounds on the next column).
    Range,
}

/// The pluggable cost model interface. The default implementation
/// ([`CostParams`]-driven) lives in [`crate::opt`]; experiments can
/// substitute alternatives (the paper's flexibility requirement: "new
/// ideas will be forthcoming that the design should be capable of
/// incorporating").
pub trait CostModel {
    /// Cost/cardinality of scanning base-relation statistics `stats`
    /// with `bound` of its columns bound.
    fn base_access(&self, stats: &Stats, bound: &[usize]) -> PlanCost;

    /// Like [`CostModel::base_access`], with the physical access path
    /// known. The default forwards to `base_access`, so models that do
    /// not distinguish paths keep their existing behavior.
    fn indexed_access(&self, stats: &Stats, bound: &[usize], path: AccessPath) -> PlanCost {
        let _ = path;
        self.base_access(stats, bound)
    }

    /// Combined cost of a union of rule results.
    fn union_of(&self, parts: &[PlanCost], arity: usize) -> PlanCost;

    /// The parameters in use.
    fn params(&self) -> &CostParams;
}

/// Default System-R-flavoured cost model.
#[derive(Clone, Debug, Default)]
pub struct DefaultCostModel {
    /// The constants.
    pub params: CostParams,
}

impl DefaultCostModel {
    /// Model with explicit parameters.
    pub fn new(params: CostParams) -> DefaultCostModel {
        DefaultCostModel { params }
    }

    /// Estimated distinct count for a derived relation column.
    pub fn derived_distinct(&self, cardinality: f64) -> f64 {
        cardinality.max(1.0).powf(self.params.derived_distinct_exp)
    }
}

impl CostModel for DefaultCostModel {
    fn base_access(&self, stats: &Stats, bound: &[usize]) -> PlanCost {
        // Non-finite stats describe an unsafe subplan; they must stay
        // infectious. Without this guard, `eq_selectivity = 1/∞ = 0`
        // makes `fanout = (∞ × 0).max(0.0) = NaN.max(0.0) = 0.0` — the
        // infinite relation prices as *free*.
        if !stats.is_finite() {
            return PlanCost::unsafe_plan(stats.arity());
        }
        let mut sel = 1.0;
        for &c in bound {
            sel *= stats.eq_selectivity(c);
        }
        let fanout = (stats.cardinality * sel).max(0.0);
        // Index probe: proportional to matches; full scan when unbound.
        let probe = if bound.is_empty() {
            stats.cardinality.max(1.0)
        } else {
            fanout.max(1.0)
        };
        PlanCost {
            setup: 0.0,
            probe,
            fanout,
            stats: stats.clone(),
        }
    }

    fn indexed_access(&self, stats: &Stats, bound: &[usize], path: AccessPath) -> PlanCost {
        // Same infection guard as `base_access`.
        if !stats.is_finite() {
            return PlanCost::unsafe_plan(stats.arity());
        }
        let card = stats.cardinality;
        let mut sel = 1.0;
        for &c in bound {
            sel *= stats.eq_selectivity(c);
        }
        let fanout = (card * sel).max(0.0);
        let (setup, probe) = match path {
            AccessPath::FullScan => (0.0, card.max(1.0)),
            // Each distinct hash key set pays its own O(card) build.
            AccessPath::HashProbe => (self.params.cpu_per_tuple * card, fanout.max(1.0)),
            // A selected order is built once per relation version no
            // matter how many signatures probe it; the solver already
            // charged that build to the catalog, so a plan using it pays
            // only the binary search.
            AccessPath::OrderedPrefix => (
                0.0,
                self.params.cpu_per_tuple * card.max(2.0).log2() + fanout.max(1.0),
            ),
            AccessPath::Range => {
                let range_fanout = (fanout * self.params.ineq_selectivity).max(0.0);
                (
                    0.0,
                    self.params.cpu_per_tuple * card.max(2.0).log2() + range_fanout.max(1.0),
                )
            }
        };
        let fanout = if path == AccessPath::Range {
            (fanout * self.params.ineq_selectivity).max(0.0)
        } else {
            fanout
        };
        PlanCost {
            setup,
            probe,
            fanout,
            stats: stats.clone(),
        }
    }

    fn union_of(&self, parts: &[PlanCost], arity: usize) -> PlanCost {
        if parts.iter().any(PlanCost::is_unsafe) {
            return PlanCost::unsafe_plan(arity);
        }
        let setup: f64 = parts.iter().map(|p| p.setup).sum();
        let probe: f64 = parts.iter().map(|p| p.probe).sum();
        let fanout: f64 = parts.iter().map(|p| p.fanout).sum();
        let card: f64 = parts
            .iter()
            .map(|p| p.stats.cardinality)
            .sum::<f64>()
            .min(self.params.cardinality_cap);
        let d = self.derived_distinct(card);
        PlanCost {
            setup,
            probe,
            fanout,
            stats: Stats::uniform(card, arity, d),
        }
    }

    fn params(&self) -> &CostParams {
        &self.params
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_access_bound_is_cheaper() {
        let m = DefaultCostModel::default();
        let s = Stats::uniform(10_000.0, 2, 100.0);
        let free = m.base_access(&s, &[]);
        let bound = m.base_access(&s, &[0]);
        assert!(bound.fanout < free.fanout);
        assert!(bound.probe < free.probe);
        assert_eq!(bound.fanout, 100.0); // 10_000 / 100
    }

    #[test]
    fn two_bound_columns_compound_selectivity() {
        let m = DefaultCostModel::default();
        let s = Stats::uniform(10_000.0, 2, 100.0);
        let b2 = m.base_access(&s, &[0, 1]);
        assert!((b2.fanout - 1.0).abs() < 1e-9);
    }

    #[test]
    fn unsafe_plan_propagates_through_union() {
        let m = DefaultCostModel::default();
        let ok = m.base_access(&Stats::uniform(10.0, 1, 10.0), &[]);
        let bad = PlanCost::unsafe_plan(1);
        let u = m.union_of(&[ok, bad], 1);
        assert!(u.is_unsafe());
    }

    #[test]
    fn union_sums_cardinalities() {
        let m = DefaultCostModel::default();
        let a = m.base_access(&Stats::uniform(10.0, 1, 10.0), &[]);
        let b = m.base_access(&Stats::uniform(20.0, 1, 20.0), &[]);
        let u = m.union_of(&[a, b], 1);
        assert_eq!(u.stats.cardinality, 30.0);
    }

    #[test]
    fn total_combines_setup_and_probes() {
        let p = PlanCost {
            setup: 100.0,
            probe: 2.0,
            fanout: 1.0,
            stats: Stats::uniform(1.0, 1, 1.0),
        };
        assert_eq!(p.total(10.0), 120.0);
    }

    #[test]
    fn infinite_cost_is_infectious_in_total() {
        let p = PlanCost::unsafe_plan(2);
        assert!(p.total(1.0).is_infinite());
        assert!(p.is_unsafe());
    }

    /// Regression (cost model): the statistics of an unsafe plan must
    /// never produce a finite `PlanCost` downstream — through
    /// `base_access` (bound and free), `union_of`, or `Stats::project`.
    /// Before the fix, `eq_selectivity = 1/∞ = 0` gave
    /// `fanout = NaN.max(0.0) = 0.0`: the unsafe subplan cost out free.
    #[test]
    fn unsafe_stats_never_cost_finite_downstream() {
        let m = DefaultCostModel::default();
        for arity in [1, 2, 3] {
            let stats = PlanCost::unsafe_plan(arity).stats;
            assert!(!stats.is_finite());

            let bound = m.base_access(&stats, &[0]);
            assert!(bound.is_unsafe(), "bound access went finite: {bound}");
            assert_ne!(bound.fanout, 0.0, "infinite relation priced as free");
            let free = m.base_access(&stats, &[]);
            assert!(free.is_unsafe(), "free access went finite: {free}");

            let ok = m.base_access(&Stats::uniform(10.0, arity, 5.0), &[]);
            let u = m.union_of(&[ok, bound], arity);
            assert!(u.is_unsafe(), "union laundered unsafe stats");
            assert!(!u.stats.is_finite());

            let projected = stats.project(&[0]);
            assert!(!projected.is_finite(), "projection re-finited unsafe stats");
            assert!(m.base_access(&projected, &[0]).is_unsafe());
        }
    }

    /// Two signatures sharing one selected ordered index must beat two
    /// on-demand hash builds: the ordered path amortizes its build into
    /// the catalog (setup 0 here), the hash path pays O(card) per
    /// distinct key set.
    #[test]
    fn shared_ordered_index_beats_per_signature_hashes() {
        let m = DefaultCostModel::default();
        let s = Stats::uniform(10_000.0, 3, 100.0);
        let n = 50.0; // binding tuples per probe site
        let hash_total: f64 = [vec![0usize], vec![0, 1]]
            .iter()
            .map(|cols| m.indexed_access(&s, cols, AccessPath::HashProbe).total(n))
            .sum();
        let ordered_total: f64 = [vec![0usize], vec![0, 1]]
            .iter()
            .map(|cols| {
                m.indexed_access(&s, cols, AccessPath::OrderedPrefix)
                    .total(n)
            })
            .sum();
        assert!(
            ordered_total < hash_total,
            "ordered {ordered_total} should beat hash {hash_total}"
        );
    }

    #[test]
    fn indexed_access_paths_are_ordered_sensibly() {
        let m = DefaultCostModel::default();
        let s = Stats::uniform(10_000.0, 2, 100.0);
        let scan = m.indexed_access(&s, &[], AccessPath::FullScan);
        let hash = m.indexed_access(&s, &[0], AccessPath::HashProbe);
        let ordered = m.indexed_access(&s, &[0], AccessPath::OrderedPrefix);
        let range = m.indexed_access(&s, &[0], AccessPath::Range);
        // A probe is cheaper per binding than a scan; the ordered probe
        // adds only a log factor over the hash probe but no setup.
        assert!(hash.probe < scan.probe);
        assert!(ordered.setup == 0.0 && hash.setup > 0.0);
        assert!(ordered.probe < hash.probe + 1.0);
        // Range restricts the fanout by the inequality selectivity.
        assert!(range.fanout < ordered.fanout);
        // Default path classification forwards to base_access.
        let base = m.base_access(&s, &[0]);
        assert_eq!(base.fanout, ordered.fanout);
    }

    #[test]
    fn indexed_access_keeps_unsafe_stats_infectious() {
        let m = DefaultCostModel::default();
        let stats = PlanCost::unsafe_plan(2).stats;
        for path in [
            AccessPath::FullScan,
            AccessPath::HashProbe,
            AccessPath::OrderedPrefix,
            AccessPath::Range,
        ] {
            assert!(
                m.indexed_access(&stats, &[0], path).is_unsafe(),
                "{path:?} went finite"
            );
        }
    }

    /// NaN inputs (e.g. `∞ × 0` upstream) are as infectious as `∞`.
    #[test]
    fn nan_stats_are_unsafe_too() {
        let m = DefaultCostModel::default();
        let s = Stats::uniform(f64::NAN, 2, f64::NAN);
        assert!(!s.is_finite());
        assert!(m.base_access(&s, &[0]).is_unsafe());
        assert!(m.base_access(&s, &[]).is_unsafe());
    }
}
