//! Search strategies over join orders (§7.1).
//!
//! Three generic strategies with one interface each:
//!
//! * [`exhaustive`] — full permutation enumeration and the Selinger
//!   dynamic program (O(n·2ⁿ) time / O(2ⁿ) space) [Sel 79];
//! * [`kbz`] — the quadratic-time algorithm of [KBZ 86] for acyclic
//!   queries under ASI cost functions, with the spanning-tree heuristic
//!   for cyclic queries;
//! * [`anneal`] — simulated annealing [IW 87], characterized (as in the
//!   paper) purely by its neighbor relation: swap two positions.

pub mod anneal;
pub mod exhaustive;
pub mod kbz;

/// Which strategy the integrated optimizer uses for conjunct ordering.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Strategy {
    /// Enumerate all n! permutations.
    Exhaustive,
    /// Selinger dynamic programming over subsets.
    DynamicProgramming,
    /// Memoized transformation-based enumeration: an exact Pareto
    /// frontier of `(cost, cardinality)` per memo key
    /// (literal subset × fold-tail), so the chosen plan provably
    /// matches exhaustive enumeration's minimum while exploring
    /// polynomially fewer prefixes in practice. The default.
    Memo,
    /// KBZ quadratic algorithm (falls back to DP when inapplicable).
    Kbz,
    /// Simulated annealing.
    Annealing,
}

impl Strategy {
    /// Every strategy, for sweeps.
    pub const ALL: [Strategy; 5] = [
        Strategy::Exhaustive,
        Strategy::DynamicProgramming,
        Strategy::Memo,
        Strategy::Kbz,
        Strategy::Annealing,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Strategy::Exhaustive => "exhaustive",
            Strategy::DynamicProgramming => "dp",
            Strategy::Memo => "memo",
            Strategy::Kbz => "kbz",
            Strategy::Annealing => "annealing",
        }
    }
}

/// Outcome of a search: the chosen order, its cost, and how many
/// candidate orders were costed along the way (the work measure used by
/// experiment E2/E3).
#[derive(Clone, Debug, PartialEq)]
pub struct SearchResult {
    /// Chosen join order.
    pub order: Vec<usize>,
    /// Its cost under the graph's cost function.
    pub cost: f64,
    /// Number of complete or partial orders evaluated.
    pub probes: usize,
}
