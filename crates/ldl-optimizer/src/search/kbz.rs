//! The KBZ quadratic algorithm [KBZ 86] (Krishnamurthy, Boral, Zaniolo).
//!
//! For an acyclic (tree) join graph and a cost function with the
//! *Adjacent Sequence Interchange* (ASI) property, the optimal join
//! order can be found in polynomial time: root the query tree at each
//! relation in turn; working bottom-up, merge subtree chains in
//! ascending *rank* order, contracting any chain segment that would
//! violate the tree's precedence constraints into a single module; the
//! best rooted result is the answer. The sum-of-intermediate-results
//! cost used by [`JoinGraph`] satisfies ASI, with
//!
//! ```text
//! T(module) = Π (selectivity-to-predecessors · cardinality)
//! C(module) = cost contribution;   rank = (T - 1) / C
//! ```
//!
//! For cyclic queries the paper reports the algorithm "has proved to be
//! heuristically effective": we apply it to the most-selective spanning
//! tree and honestly evaluate the resulting order against the full
//! graph — precisely the protocol of the [Vil 87] experiments (E1).

use crate::joingraph::JoinGraph;
use crate::search::SearchResult;

#[derive(Clone, Debug)]
struct Module {
    rels: Vec<usize>,
    t: f64,
    c: f64,
}

impl Module {
    fn rank(&self) -> f64 {
        if self.c <= 0.0 {
            f64::NEG_INFINITY // free module: schedule as early as possible
        } else {
            (self.t - 1.0) / self.c
        }
    }

    /// ASI sequence composition: C(AB) = C(A) + T(A)·C(B), T(AB) = T(A)·T(B).
    fn then(mut self, other: Module) -> Module {
        self.c += self.t * other.c;
        self.t *= other.t;
        self.rels.extend(other.rels);
        self
    }
}

/// Merges normalized chains by ascending rank (k-way merge).
fn merge_chains(mut chains: Vec<Vec<Module>>) -> Vec<Module> {
    let mut out = Vec::new();
    loop {
        let mut best: Option<(f64, usize)> = None;
        for (ci, ch) in chains.iter().enumerate() {
            if let Some(m) = ch.first() {
                let r = m.rank();
                if best.map(|(br, _)| r < br).unwrap_or(true) {
                    best = Some((r, ci));
                }
            }
        }
        match best {
            None => return out,
            Some((_, ci)) => out.push(chains[ci].remove(0)),
        }
    }
}

/// Normalizes a chain whose tail is sorted by rank but whose head may
/// violate the ordering: merge from the front until nondecreasing.
fn normalize_front(mut chain: Vec<Module>) -> Vec<Module> {
    while chain.len() >= 2 && chain[0].rank() > chain[1].rank() {
        let second = chain.remove(1);
        let first = std::mem::replace(
            &mut chain[0],
            Module {
                rels: vec![],
                t: 1.0,
                c: 0.0,
            },
        );
        chain[0] = first.then(second);
    }
    chain
}

/// The chain (sequence of modules in execution order) for the subtree
/// rooted at `v`, with `v`'s own module first. `t_edge[v]` is the
/// selectivity of the edge to `v`'s parent.
fn subtree_chain(v: usize, children: &[Vec<usize>], t_of: &[f64]) -> Vec<Module> {
    let child_chains: Vec<Vec<Module>> = children[v]
        .iter()
        .map(|&c| subtree_chain(c, children, t_of))
        .collect();
    let merged = merge_chains(child_chains);
    let mut chain = Vec::with_capacity(merged.len() + 1);
    chain.push(Module {
        rels: vec![v],
        t: t_of[v],
        c: t_of[v],
    });
    chain.extend(merged);
    normalize_front(chain)
}

/// Runs KBZ on `g`. Uses the join graph's own tree if it is one,
/// otherwise the most-selective spanning tree; the produced order is
/// always costed against the full graph.
pub fn optimize_kbz(g: &JoinGraph) -> SearchResult {
    let n = g.n();
    if n == 1 {
        return SearchResult {
            order: vec![0],
            cost: g.sequence_cost(&[0]),
            probes: 1,
        };
    }
    let tree_edges: Vec<(usize, usize, f64)> = if g.is_tree() {
        g.edges()
    } else {
        g.spanning_tree()
    };
    let mut adj: Vec<Vec<(usize, f64)>> = vec![Vec::new(); n];
    for &(i, j, s) in &tree_edges {
        adj[i].push((j, s));
        adj[j].push((i, s));
    }

    let mut best: Option<(f64, Vec<usize>)> = None;
    let mut probes = 0usize;
    for root in 0..n {
        // Orient the tree away from `root` (BFS) and record T per node.
        let mut children: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut t_of: Vec<f64> = vec![1.0; n];
        let mut seen = vec![false; n];
        let mut queue = std::collections::VecDeque::from([root]);
        seen[root] = true;
        t_of[root] = g.card(root);
        while let Some(v) = queue.pop_front() {
            for &(w, s) in &adj[v] {
                if !seen[w] {
                    seen[w] = true;
                    children[v].push(w);
                    t_of[w] = s * g.card(w);
                    queue.push_back(w);
                }
            }
        }
        let chain = subtree_chain(root, &children, &t_of);
        let order: Vec<usize> = chain.into_iter().flat_map(|m| m.rels).collect();
        debug_assert_eq!(order.len(), n);
        probes += 1;
        let cost = g.sequence_cost(&order);
        match &best {
            Some((bc, _)) if *bc <= cost => {}
            _ => best = Some((cost, order)),
        }
    }
    let (mut cost, mut order) = best.expect("n >= 1");

    // Cyclic queries: the spanning-tree solution ignores the chord
    // edges' selectivities, so polish it with a bounded pairwise-swap
    // hill climb (the paper's "extended to include cyclic queries"
    // variant is likewise a heuristic layer on the tree algorithm).
    // Tree graphs skip this: the result is already provably optimal.
    if !g.is_tree() && n >= 3 {
        let mut improved = true;
        let mut sweeps = 0;
        while improved && sweeps < n {
            improved = false;
            sweeps += 1;
            for i in 0..n {
                for j in i + 1..n {
                    order.swap(i, j);
                    let c = g.sequence_cost(&order);
                    probes += 1;
                    if c < cost {
                        cost = c;
                        improved = true;
                    } else {
                        order.swap(i, j);
                    }
                }
            }
        }
    }
    SearchResult {
        order,
        cost,
        probes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search::exhaustive::optimize_exhaustive;

    fn chain_graph(cards: &[f64], sels: &[f64]) -> JoinGraph {
        let mut g = JoinGraph::new(cards.to_vec());
        for (i, &s) in sels.iter().enumerate() {
            g.set_selectivity(i, i + 1, s);
        }
        g
    }

    #[test]
    fn kbz_is_optimal_on_chains() {
        let g = chain_graph(&[100.0, 1000.0, 10.0, 500.0], &[0.1, 0.01, 0.05]);
        let kbz = optimize_kbz(&g);
        let ex = optimize_exhaustive(&g);
        assert!(
            (kbz.cost - ex.cost).abs() <= 1e-9 * ex.cost,
            "kbz {} vs exhaustive {}",
            kbz.cost,
            ex.cost
        );
    }

    #[test]
    fn kbz_is_optimal_on_stars() {
        let mut g = JoinGraph::new(vec![10_000.0, 10.0, 100.0, 1000.0]);
        g.set_selectivity(0, 1, 0.01);
        g.set_selectivity(0, 2, 0.001);
        g.set_selectivity(0, 3, 0.1);
        let kbz = optimize_kbz(&g);
        let ex = optimize_exhaustive(&g);
        assert!((kbz.cost - ex.cost).abs() <= 1e-9 * ex.cost);
    }

    #[test]
    fn kbz_order_is_valid_permutation() {
        let g = chain_graph(&[5.0, 6.0, 7.0, 8.0, 9.0], &[0.5, 0.4, 0.3, 0.2]);
        let r = optimize_kbz(&g);
        let mut o = r.order.clone();
        o.sort_unstable();
        assert_eq!(o, (0..5).collect::<Vec<_>>());
    }

    #[test]
    fn kbz_handles_cyclic_queries_heuristically() {
        let mut g = chain_graph(&[100.0, 200.0, 300.0], &[0.1, 0.2]);
        g.set_selectivity(0, 2, 0.05); // close the cycle
        let kbz = optimize_kbz(&g);
        let ex = optimize_exhaustive(&g);
        // Heuristic: must be within 3x of optimal on this tiny query.
        assert!(
            kbz.cost <= 3.0 * ex.cost,
            "kbz {} vs ex {}",
            kbz.cost,
            ex.cost
        );
    }

    #[test]
    fn kbz_probe_count_is_linear_in_roots() {
        let g = chain_graph(&[1.0; 8], &[0.5; 7]);
        let r = optimize_kbz(&g);
        assert_eq!(r.probes, 8);
    }

    #[test]
    fn kbz_single_relation() {
        let g = JoinGraph::new(vec![7.0]);
        let r = optimize_kbz(&g);
        assert_eq!(r.order, vec![0]);
    }

    #[test]
    fn kbz_respects_precedence_on_deep_trees() {
        // A path where a very attractive (low-rank) relation sits behind
        // an unattractive one; KBZ must still produce a connected-prefix
        // order along the tree and stay optimal.
        let g = chain_graph(&[10.0, 10_000.0, 2.0], &[0.5, 0.0001]);
        let kbz = optimize_kbz(&g);
        let ex = optimize_exhaustive(&g);
        assert!((kbz.cost - ex.cost).abs() <= 1e-9 * ex.cost.max(1.0));
    }

    #[test]
    fn kbz_matches_connected_dp_on_random_trees() {
        use crate::search::exhaustive::optimize_dp_connected;
        use ldl_support::SplitMix64;
        for seed in 0..60u64 {
            let mut rng = SplitMix64::seed_from_u64(seed);
            let n = rng.gen_range(3usize..9);
            let cards: Vec<f64> = (0..n)
                .map(|_| 10f64.powf(rng.gen_range(1.0..5.0)).round())
                .collect();
            let mut g = JoinGraph::new(cards);
            // Random tree: attach each node to a random earlier one.
            for i in 1..n {
                let j = rng.gen_range(0..i);
                g.set_selectivity(i, j, 10f64.powf(rng.gen_range(-4.0..-0.5)));
            }
            assert!(g.is_tree());
            let kbz = optimize_kbz(&g);
            let dp = optimize_dp_connected(&g);
            assert!(
                (kbz.cost - dp.cost).abs() <= 1e-6 * dp.cost.max(1.0),
                "seed {seed}: kbz {} vs connected-dp {} (orders {:?} vs {:?})",
                kbz.cost,
                dp.cost,
                kbz.order,
                dp.order
            );
        }
    }

    #[test]
    fn kbz_disconnected_graph_still_produces_order() {
        let g = JoinGraph::new(vec![10.0, 20.0, 30.0]);
        let r = optimize_kbz(&g);
        assert_eq!(r.order.len(), 3);
        assert!(r.cost.is_finite());
    }
}
