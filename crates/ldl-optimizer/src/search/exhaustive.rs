//! Exhaustive enumeration and Selinger dynamic programming [Sel 79].

use crate::joingraph::JoinGraph;
use crate::search::SearchResult;

/// Enumerates all `n!` orders. Panics above 11 relations (the paper:
/// "database systems must limit the queries to no more than 10 or 15
/// joins" under this strategy).
pub fn optimize_exhaustive(g: &JoinGraph) -> SearchResult {
    let n = g.n();
    assert!(
        n <= 11,
        "exhaustive enumeration beyond 11 relations is impractical"
    );
    let mut perm: Vec<usize> = (0..n).collect();
    let mut best: Option<(f64, Vec<usize>)> = None;
    let mut probes = 0usize;
    permute(&mut perm, 0, &mut |p| {
        probes += 1;
        let c = g.sequence_cost(p);
        match &best {
            Some((bc, _)) if *bc <= c => {}
            _ => best = Some((c, p.to_vec())),
        }
    });
    let (cost, order) = best.expect("n >= 1");
    SearchResult {
        order,
        cost,
        probes,
    }
}

/// Heap-style recursive permutation visitor.
fn permute(perm: &mut Vec<usize>, k: usize, visit: &mut impl FnMut(&[usize])) {
    if k == perm.len() {
        visit(perm);
        return;
    }
    for i in k..perm.len() {
        perm.swap(k, i);
        permute(perm, k + 1, visit);
        perm.swap(k, i);
    }
}

/// Selinger dynamic programming over subsets: O(n·2ⁿ) partial orders.
///
/// Exact for this cost function because the intermediate cardinality of a
/// subset is order-independent (all selectivities between subset members
/// apply exactly once).
pub fn optimize_dp(g: &JoinGraph) -> SearchResult {
    let n = g.n();
    assert!(n <= 24, "DP beyond 24 relations exhausts memory");
    let full: usize = if n == usize::BITS as usize {
        usize::MAX
    } else {
        (1 << n) - 1
    };
    // best[mask] = (cost, card, last) — reconstruct order via `last`.
    let mut best: Vec<Option<(f64, f64, usize)>> = vec![None; full + 1];
    let mut probes = 0usize;
    for i in 0..n {
        let c = g.card(i);
        best[1 << i] = Some((c, c, i));
        probes += 1;
    }
    for mask in 1..=full {
        let Some((cost, card, _)) = best[mask] else {
            continue;
        };
        for next in 0..n {
            if mask & (1 << next) != 0 {
                continue;
            }
            probes += 1;
            // t = card(next) * Π selectivities to subset members.
            let mut t = g.card(next);
            for p in 0..n {
                if mask & (1 << p) != 0 {
                    t *= g.selectivity(p, next);
                }
            }
            let ncard = card * t;
            let ncost = cost + ncard;
            let nmask = mask | (1 << next);
            match best[nmask] {
                Some((c, _, _)) if c <= ncost => {}
                _ => best[nmask] = Some((ncost, ncard, next)),
            }
        }
    }
    // Reconstruct.
    let mut order = Vec::with_capacity(n);
    let mut mask = full;
    while mask != 0 {
        let (_, _, last) = best[mask].expect("reachable subset");
        order.push(last);
        mask &= !(1 << last);
    }
    order.reverse();
    let (cost, _, _) = best[full].expect("full subset");
    SearchResult {
        order,
        cost,
        probes,
    }
}

/// Selinger DP restricted to *connected* prefixes (no cross products
/// unless the graph itself is disconnected) — the space System R and the
/// KBZ algorithm actually search. On tree queries KBZ is provably
/// optimal w.r.t. this space.
pub fn optimize_dp_connected(g: &JoinGraph) -> SearchResult {
    let n = g.n();
    assert!(n <= 24, "DP beyond 24 relations exhausts memory");
    let full: usize = (1usize << n) - 1;
    let mut best: Vec<Option<(f64, f64, usize)>> = vec![None; full + 1];
    let mut probes = 0usize;
    for i in 0..n {
        let c = g.card(i);
        best[1 << i] = Some((c, c, i));
        probes += 1;
    }
    let connected = |mask: usize, next: usize| -> bool {
        (0..n).any(|p| mask & (1 << p) != 0 && g.selectivity(p, next) < 1.0)
    };
    for mask in 1..=full {
        let Some((cost, card, _)) = best[mask] else {
            continue;
        };
        // Prefer connected extensions; fall back to any extension only if
        // none exists (disconnected graphs must still complete).
        let any_connected = (0..n).any(|x| mask & (1 << x) == 0 && connected(mask, x));
        for next in 0..n {
            if mask & (1 << next) != 0 {
                continue;
            }
            if any_connected && !connected(mask, next) {
                continue;
            }
            probes += 1;
            let mut t = g.card(next);
            for p in 0..n {
                if mask & (1 << p) != 0 {
                    t *= g.selectivity(p, next);
                }
            }
            let ncard = card * t;
            let ncost = cost + ncard;
            let nmask = mask | (1 << next);
            match best[nmask] {
                Some((c, _, _)) if c <= ncost => {}
                _ => best[nmask] = Some((ncost, ncard, next)),
            }
        }
    }
    let mut order = Vec::with_capacity(n);
    let mut mask = full;
    while mask != 0 {
        let (_, _, last) = best[mask].expect("reachable subset");
        order.push(last);
        mask &= !(1 << last);
    }
    order.reverse();
    let (cost, _, _) = best[full].expect("full subset");
    SearchResult {
        order,
        cost,
        probes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn star(n_sat: usize) -> JoinGraph {
        // Hub relation 0 with satellites of varying size/selectivity.
        let mut cards = vec![1000.0];
        for i in 0..n_sat {
            cards.push(10.0_f64.powi((i % 4) as i32 + 1));
        }
        let mut g = JoinGraph::new(cards);
        for i in 0..n_sat {
            g.set_selectivity(0, i + 1, 0.1 / (i + 1) as f64);
        }
        g
    }

    #[test]
    fn dp_matches_exhaustive_on_small_graphs() {
        for n_sat in 1..=5 {
            let g = star(n_sat);
            let ex = optimize_exhaustive(&g);
            let dp = optimize_dp(&g);
            assert!(
                (ex.cost - dp.cost).abs() < 1e-6 * ex.cost.max(1.0),
                "n_sat={n_sat}: exhaustive {} vs dp {}",
                ex.cost,
                dp.cost
            );
        }
    }

    #[test]
    fn dp_uses_far_fewer_probes() {
        let g = star(7); // 8 relations: 40320 permutations
        let ex = optimize_exhaustive(&g);
        let dp = optimize_dp(&g);
        assert!(
            dp.probes < ex.probes / 10,
            "dp {} vs ex {}",
            dp.probes,
            ex.probes
        );
        assert!((ex.cost - dp.cost).abs() < 1e-6 * ex.cost);
    }

    #[test]
    fn exhaustive_probe_count_is_factorial() {
        let g = star(3);
        let ex = optimize_exhaustive(&g);
        assert_eq!(ex.probes, 24); // 4!
    }

    #[test]
    fn chain_query_optimal_order_starts_small() {
        // tiny -0.01- huge -0.01- tiny: optimal orders start at an end.
        let mut g = JoinGraph::new(vec![10.0, 100000.0, 10.0]);
        g.set_selectivity(0, 1, 0.01);
        g.set_selectivity(1, 2, 0.01);
        let ex = optimize_exhaustive(&g);
        assert_ne!(ex.order[0], 1, "must not scan the huge relation first");
    }

    #[test]
    fn single_relation() {
        let g = JoinGraph::new(vec![42.0]);
        let ex = optimize_exhaustive(&g);
        assert_eq!(ex.order, vec![0]);
        assert_eq!(ex.cost, 42.0);
        let dp = optimize_dp(&g);
        assert_eq!(dp.order, vec![0]);
    }

    #[test]
    fn dp_reconstruction_is_a_permutation() {
        let g = star(6);
        let dp = optimize_dp(&g);
        let mut o = dp.order.clone();
        o.sort_unstable();
        assert_eq!(o, (0..7).collect::<Vec<_>>());
    }

    #[test]
    fn connected_dp_never_beats_full_dp() {
        for n_sat in 2..=6 {
            let g = star(n_sat);
            let full = optimize_dp(&g);
            let conn = optimize_dp_connected(&g);
            assert!(conn.cost >= full.cost - 1e-9);
        }
    }

    #[test]
    fn connected_dp_avoids_cross_products_on_connected_graphs() {
        let g = star(4);
        let r = optimize_dp_connected(&g);
        // Every prefix must touch the hub by its second element (the only
        // way to stay connected in a star).
        assert!(r.order[0] == 0 || r.order[1] == 0, "order {:?}", r.order);
    }

    #[test]
    fn connected_dp_handles_disconnected_graphs() {
        let g = JoinGraph::new(vec![10.0, 20.0, 30.0]);
        let r = optimize_dp_connected(&g);
        assert_eq!(r.order.len(), 3);
        assert!(r.cost.is_finite());
    }
}
