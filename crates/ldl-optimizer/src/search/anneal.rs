//! Simulated annealing over join orders [IW 87].
//!
//! §7.1 of the paper characterizes the annealing process entirely by its
//! neighbor relation: two orders are neighbors when they differ by one
//! swap of two positions (the closure of that relation is the whole
//! permutation space). The walk accepts uphill moves with probability
//! `exp(-Δ/T)` under a geometric cooling schedule, so it degenerates to
//! random descent as `T → 0`.

use crate::joingraph::JoinGraph;
use crate::search::SearchResult;
use ldl_support::SplitMix64;

/// Annealing schedule parameters.
#[derive(Clone, Debug)]
pub struct AnnealParams {
    /// Initial temperature as a fraction of the starting cost.
    pub initial_temp_fraction: f64,
    /// Geometric cooling factor per stage.
    pub cooling: f64,
    /// Moves attempted per temperature stage (scaled by n).
    pub moves_per_stage: usize,
    /// Stop when the temperature falls below this fraction of the
    /// starting cost.
    pub final_temp_fraction: f64,
    /// Hard cap on cost evaluations.
    pub max_probes: usize,
}

impl Default for AnnealParams {
    fn default() -> Self {
        AnnealParams {
            initial_temp_fraction: 0.5,
            cooling: 0.9,
            moves_per_stage: 8,
            final_temp_fraction: 1e-6,
            max_probes: 20_000,
        }
    }
}

/// Runs simulated annealing with the swap-two neighbor relation.
pub fn optimize_anneal(g: &JoinGraph, params: &AnnealParams, seed: u64) -> SearchResult {
    let n = g.n();
    let mut rng = SplitMix64::seed_from_u64(seed);
    let mut current: Vec<usize> = (0..n).collect();
    // Random restart point: shuffle.
    for i in (1..n).rev() {
        let j = rng.gen_range(0..=i);
        current.swap(i, j);
    }
    let mut cur_cost = g.sequence_cost(&current);
    let mut best = current.clone();
    let mut best_cost = cur_cost;
    let mut probes = 1usize;

    if n < 2 {
        return SearchResult {
            order: current,
            cost: cur_cost,
            probes,
        };
    }

    // Fit the geometric schedule to the probe budget: reserve a quarter
    // of the budget for the final quench (greedy descent), spread the
    // rest over stages of `moves_per_stage · n` moves, and choose the
    // cooling factor that actually reaches the floor temperature within
    // those stages (a fixed factor would truncate mid-schedule and
    // return a half-annealed order).
    let moves_per_stage = params.moves_per_stage * n;
    let anneal_budget = params.max_probes * 3 / 4;
    let stages = (anneal_budget / moves_per_stage).max(1);
    let ratio = params.final_temp_fraction / params.initial_temp_fraction;
    let fitted_cooling = ratio.powf(1.0 / stages as f64).min(params.cooling);
    let mut temp = cur_cost.max(1.0) * params.initial_temp_fraction;
    let floor = cur_cost.max(1.0) * params.final_temp_fraction;
    while temp > floor && probes < anneal_budget {
        for _ in 0..moves_per_stage {
            if probes >= anneal_budget {
                break;
            }
            let i = rng.gen_range(0..n);
            let mut j = rng.gen_range(0..n - 1);
            if j >= i {
                j += 1;
            }
            current.swap(i, j);
            let c = g.sequence_cost(&current);
            probes += 1;
            let accept = c <= cur_cost || {
                let delta = c - cur_cost;
                rng.gen::<f64>() < (-delta / temp).exp()
            };
            if accept {
                cur_cost = c;
                if c < best_cost {
                    best_cost = c;
                    best = current.clone();
                }
            } else {
                current.swap(i, j); // undo
            }
        }
        temp *= fitted_cooling;
    }

    // Quench: greedy pairwise-swap descent from the best state found.
    current = best.clone();
    cur_cost = best_cost;
    let mut improved = true;
    while improved && probes < params.max_probes {
        improved = false;
        'sweep: for i in 0..n {
            for j in i + 1..n {
                if probes >= params.max_probes {
                    break 'sweep;
                }
                current.swap(i, j);
                let c = g.sequence_cost(&current);
                probes += 1;
                if c < cur_cost {
                    cur_cost = c;
                    improved = true;
                } else {
                    current.swap(i, j);
                }
            }
        }
    }
    if cur_cost < best_cost {
        best_cost = cur_cost;
        best = current;
    }
    SearchResult {
        order: best,
        cost: best_cost,
        probes,
    }
}

/// Generic simulated annealing over an arbitrary state space, used by
/// the integrated optimizer for rule orders and clique c-permutations
/// (where the cost function involves recursive sub-plan lookups and an
/// explicit [`JoinGraph`] does not exist). `neighbor` must return a new
/// state differing by one elementary move; `cost` may return infinity
/// for unsafe states.
pub fn anneal_generic<S: Clone>(
    initial: S,
    mut neighbor: impl FnMut(&S, &mut SplitMix64) -> S,
    mut cost: impl FnMut(&S) -> f64,
    params: &AnnealParams,
    seed: u64,
) -> (S, f64, usize) {
    let mut rng = SplitMix64::seed_from_u64(seed);
    let mut current = initial;
    let mut cur_cost = cost(&current);
    let mut best = current.clone();
    let mut best_cost = cur_cost;
    let mut probes = 1usize;

    let scale = if cur_cost.is_finite() {
        cur_cost.max(1.0)
    } else {
        1e9
    };
    let mut temp = scale * params.initial_temp_fraction;
    let floor = scale * params.final_temp_fraction;
    while temp > floor && probes < params.max_probes {
        for _ in 0..params.moves_per_stage {
            if probes >= params.max_probes {
                break;
            }
            let cand = neighbor(&current, &mut rng);
            let c = cost(&cand);
            probes += 1;
            let accept = c <= cur_cost
                || (c.is_finite() && rng.gen::<f64>() < (-(c - cur_cost) / temp).exp());
            if accept {
                current = cand;
                cur_cost = c;
                if c < best_cost {
                    best_cost = c;
                    best = current.clone();
                }
            }
        }
        temp *= params.cooling;
    }
    (best, best_cost, probes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search::exhaustive::optimize_exhaustive;

    fn random_graph(n: usize, seed: u64) -> JoinGraph {
        let mut rng = SplitMix64::seed_from_u64(seed);
        let cards: Vec<f64> = (0..n)
            .map(|_| 10f64.powf(rng.gen_range(1.0..5.0)).round())
            .collect();
        let mut g = JoinGraph::new(cards);
        // Random connected chain plus extra edges.
        for i in 1..n {
            let j = rng.gen_range(0..i);
            g.set_selectivity(i, j, 10f64.powf(rng.gen_range(-4.0..-0.5)));
        }
        g
    }

    #[test]
    fn annealing_finds_near_optimal_orders() {
        let mut within2 = 0;
        let total = 20;
        for seed in 0..total {
            let g = random_graph(6, seed);
            let ex = optimize_exhaustive(&g);
            let an = optimize_anneal(&g, &AnnealParams::default(), seed + 1000);
            assert!(
                an.cost >= ex.cost * (1.0 - 1e-9),
                "annealing can't beat optimal"
            );
            if an.cost <= 2.0 * ex.cost {
                within2 += 1;
            }
        }
        assert!(
            within2 >= (total as usize * 9) / 10,
            "only {within2}/{total} within 2x"
        );
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let g = random_graph(7, 42);
        let a = optimize_anneal(&g, &AnnealParams::default(), 7);
        let b = optimize_anneal(&g, &AnnealParams::default(), 7);
        assert_eq!(a.order, b.order);
        assert_eq!(a.cost, b.cost);
    }

    #[test]
    fn probes_capped() {
        let g = random_graph(9, 3);
        let p = AnnealParams {
            max_probes: 500,
            ..AnnealParams::default()
        };
        let r = optimize_anneal(&g, &p, 1);
        assert!(r.probes <= 500);
    }

    #[test]
    fn returns_valid_permutation() {
        let g = random_graph(8, 5);
        let r = optimize_anneal(&g, &AnnealParams::default(), 9);
        let mut o = r.order.clone();
        o.sort_unstable();
        assert_eq!(o, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn single_relation_trivial() {
        let g = JoinGraph::new(vec![3.0]);
        let r = optimize_anneal(&g, &AnnealParams::default(), 0);
        assert_eq!(r.order, vec![0]);
    }

    #[test]
    fn generic_annealer_minimizes_simple_function() {
        // Minimize |x - 17| over integers via +-1 moves.
        let (best, cost, _) = anneal_generic(
            100i64,
            |x, rng| if rng.gen::<bool>() { x + 1 } else { x - 1 },
            |x| (x - 17).abs() as f64,
            &AnnealParams {
                max_probes: 50_000,
                ..AnnealParams::default()
            },
            3,
        );
        assert_eq!(cost, 0.0, "best found: {best}");
    }

    #[test]
    fn generic_annealer_escapes_infinite_start() {
        // Start in an "unsafe" state (infinite cost); must still move.
        let (_, cost, _) = anneal_generic(
            -5i64,
            |x, rng| if rng.gen::<bool>() { x + 1 } else { x - 1 },
            |x| if *x < 0 { f64::INFINITY } else { *x as f64 },
            &AnnealParams {
                max_probes: 20_000,
                ..AnnealParams::default()
            },
            4,
        );
        assert!(cost.is_finite());
    }
}
