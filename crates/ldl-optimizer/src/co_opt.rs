//! Join-order × index-set co-optimization (DESIGN.md §17).
//!
//! Index selection on its own runs the chain cover over the *source*
//! program's rule bodies, so the optimizer prices candidate orders
//! against indexes chosen for orders it may never pick — the interplay
//! "Optimal On The Fly Index Selection in Polynomial Time"
//! (Jordan/Scholz/Subotić) identifies. [`co_optimize`] closes the loop
//! as one fixpoint:
//!
//! 1. **Price** the query under the current catalog (iteration 0: the
//!    source-program chain cover — the status quo ante).
//! 2. **Re-collect** search signatures (equality prefixes *and* range
//!    demands) from the candidate the optimizer chose: the permuted
//!    program the semi-naive executor would run, plus — for the
//!    binding-propagating methods — the adorned program the
//!    magic/counting rewritings start from, so adornment-renamed
//!    predicates (`sg_bf`, …) contribute their own demands.
//! 3. **Re-solve** the minimum chain cover over those demands and go
//!    back to 1 with the new catalog.
//!
//! **Termination (proved bound).** The loop stops when (a) the demand
//! maps reproduce themselves — a stable (order, index-set) pair; (b)
//! re-pricing fails to *strictly* improve the incumbent's cost — the
//! accepted-cost trajectory is therefore strictly decreasing after the
//! first iteration, and since each iteration's demand map is drawn from
//! a finite set (subsets of column sets per predicate), a
//! non-improving or repeating step must occur; or (c) the hard cap
//! [`MAX_CO_ITERATIONS`] is hit. So the fixpoint runs at most
//! `min(MAX_CO_ITERATIONS, #distinct demand maps)` pricings and the
//! cost trajectory never increases between accepted iterations.
//!
//! The returned catalog is the one *implied by the winning plan's
//! orders* (equal to the priced catalog at a stable fixpoint), and
//! [`CoOptimized::execute`] hands it to the executor via
//! [`FixpointConfig::with_index_catalog`] — the executor then builds
//! exactly the indexes the optimizer priced.

use crate::estimates::EstimateCatalog;
use crate::opt::{OptConfig, OptimizedQuery, Optimizer};
use ldl_core::adorn::adorn_program;
use ldl_core::{Program, Query, Result, Rule};
use ldl_eval::engine::{permute_program, QueryAnswer};
use ldl_eval::naive::FixpointConfig;
use ldl_eval::Method;
use ldl_index::{
    collect_range_signatures, collect_signatures, collect_signatures_in_orders, IndexCatalog,
    RangeSignatureMap, SignatureMap,
};
use ldl_storage::Database;
use std::collections::BTreeSet;
use std::sync::Arc;

/// Hard cap on co-optimization iterations (each = one full `optimize`
/// plus one signature re-collection). The strict-improvement acceptance
/// rule makes the loop terminate on its own; the cap bounds the worst
/// case absolutely.
pub const MAX_CO_ITERATIONS: usize = 6;

/// Counters and trajectory of one co-optimization run.
#[derive(Clone, Debug, PartialEq)]
pub struct CoOptStats {
    /// Pricings performed (≥ 1, ≤ [`MAX_CO_ITERATIONS`]).
    pub iterations: usize,
    /// True when the loop reached a stable (order, index-set) pair —
    /// the winning plan's demands reproduce the catalog it was priced
    /// under — rather than stopping on a non-improving step or the cap.
    pub stable: bool,
    /// Estimated cost of each *accepted* iteration, in order. Strictly
    /// decreasing after the first entry by construction (the
    /// monotonicity tests pin this).
    pub cost_trajectory: Vec<f64>,
}

/// A plan and the index set it was co-optimized with.
#[derive(Clone, Debug)]
pub struct CoOptimized {
    /// The winning plan.
    pub plan: OptimizedQuery,
    /// The catalog implied by the winning plan's orders — what the
    /// executor should build.
    pub catalog: IndexCatalog,
    /// Fixpoint counters.
    pub stats: CoOptStats,
}

impl CoOptimized {
    /// Executes the plan with the co-optimized catalog overriding the
    /// executor's per-predicate index choices (see
    /// [`FixpointConfig::index_catalog`]).
    pub fn execute(
        &self,
        program: &Program,
        db: &Database,
        cfg: &FixpointConfig,
    ) -> Result<QueryAnswer> {
        let cfg = cfg
            .clone()
            .with_index_catalog(Arc::new(self.catalog.clone()));
        self.plan.execute(program, db, &cfg)
    }
}

/// The demand maps of one candidate plan: signatures of the permuted
/// program the plan's SIP implies (what naive/semi-naive run), merged —
/// for binding-propagating methods — with those of the adorned program
/// (what the magic/counting rewritings start from), whose renamed
/// predicates get their own entries.
pub fn collect_plan_signatures(
    program: &Program,
    plan: &OptimizedQuery,
) -> (SignatureMap, RangeSignatureMap) {
    let sip = plan.sip();
    let mut identity = |_: usize, r: &Rule| (0..r.body.len()).collect::<Vec<usize>>();
    let permuted = permute_program(program, &sip);
    let (mut eq, mut ranges) = collect_signatures_in_orders(&permuted, &mut identity);
    if matches!(plan.method, Method::Magic | Method::Counting) {
        let adorned = adorn_program(program, plan.query.pred(), plan.query.adornment(), &sip);
        let (aeq, aranges) = collect_signatures_in_orders(&adorned.to_program(), &mut identity);
        for (p, sigs) in aeq {
            eq.entry(p).or_default().extend(sigs);
        }
        for (p, demands) in aranges {
            ranges.entry(p).or_default().extend(demands);
        }
    }
    (eq, ranges)
}

/// Runs the join-order × index-set fixpoint for one query. `estimates`
/// plugs the abstract interpreter's cardinality bounds into every
/// pricing iteration (pass `None` to price from database statistics).
pub fn co_optimize(
    program: &Program,
    db: &Database,
    cfg: &OptConfig,
    query: &Query,
    estimates: Option<&EstimateCatalog>,
) -> Result<CoOptimized> {
    let mut maps = (
        collect_signatures(program),
        collect_range_signatures(program),
    );
    let mut seen: BTreeSet<(SignatureMap, RangeSignatureMap)> = BTreeSet::new();
    seen.insert(maps.clone());
    let mut best: Option<(OptimizedQuery, (SignatureMap, RangeSignatureMap))> = None;
    let mut stats = CoOptStats {
        iterations: 0,
        stable: false,
        cost_trajectory: Vec::new(),
    };
    while stats.iterations < MAX_CO_ITERATIONS {
        stats.iterations += 1;
        let catalog = IndexCatalog::from_signature_maps(&maps.0, &maps.1);
        let mut opt = Optimizer::new(program, db, cfg.clone()).with_index_catalog(catalog);
        if let Some(est) = estimates {
            opt = opt.with_estimates(est.clone());
        }
        let plan = opt.optimize(query)?;
        if let Some((incumbent, _)) = &best {
            if plan.cost >= incumbent.cost {
                break; // re-pricing did not strictly improve: keep it
            }
        }
        stats.cost_trajectory.push(plan.cost);
        let next = collect_plan_signatures(program, &plan);
        let reproduced = next == maps;
        best = Some((plan, next.clone()));
        if reproduced {
            stats.stable = true;
            break;
        }
        if !seen.insert(next.clone()) {
            break; // demand maps cycled without improving on the way
        }
        maps = next;
    }
    let (plan, winning_maps) = best.expect("at least one iteration ran");
    let catalog = IndexCatalog::from_signature_maps(&winning_maps.0, &winning_maps.1);
    Ok(CoOptimized {
        plan,
        catalog,
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldl_core::parser::{parse_program, parse_query};
    use ldl_core::{Pred, Term};
    use ldl_storage::{Relation, Stats, Tuple};

    /// The pinned example where co-optimization changes the index set:
    /// in `q(X) <- big(X, Y), small(Y)` the source-order walk reaches
    /// `big` free and `small` with column 0 bound (cover: an order for
    /// `small` only), but with `big` 1000× larger than `small` the
    /// optimizer flips the join — and the flipped order demands an
    /// index on `big` column 1 instead.
    fn big_small() -> (Program, Database) {
        let program = parse_program("q(X) <- big(X, Y), small(Y).").unwrap();
        let mut db = Database::new();
        let mut big = Relation::new(2);
        let mut small = Relation::new(1);
        for i in 0..40i64 {
            big.insert(Tuple(vec![Term::int(i), Term::int(i % 10)]));
        }
        for i in 0..4i64 {
            small.insert(Tuple(vec![Term::int(i)]));
        }
        db.set_relation(Pred::new("big", 2), big);
        db.set_relation(Pred::new("small", 1), small);
        db.set_stats(
            Pred::new("big", 2),
            Stats::synthetic(10_000.0, vec![10_000.0, 100.0]),
        );
        db.set_stats(Pred::new("small", 1), Stats::synthetic(10.0, vec![10.0]));
        (program, db)
    }

    #[test]
    fn co_optimized_index_set_differs_from_source_cover() {
        let (program, db) = big_small();
        let query = parse_query("q(A)?").unwrap();
        let co = co_optimize(&program, &db, &OptConfig::default(), &query, None).unwrap();
        let source = IndexCatalog::build(&program);
        let big = Pred::new("big", 2);
        // Source cover: big is reached free — no order for it.
        assert!(source.orders(big).is_empty());
        // Co-optimized: the flipped join probes big on column 1.
        assert_eq!(
            co.catalog.orders_by_pred().get(&big),
            Some(&BTreeSet::from([vec![1]])),
            "co-optimization should demand an index the source cover lacks"
        );
        assert_ne!(source.orders_by_pred(), co.catalog.orders_by_pred());
        // And the chosen order actually is the flip.
        let order = co.plan.orders.values().next().unwrap();
        assert_eq!(order, &vec![1, 0]);
    }

    #[test]
    fn trajectory_is_strictly_decreasing_and_bounded() {
        let (program, db) = big_small();
        let query = parse_query("q(A)?").unwrap();
        let co = co_optimize(&program, &db, &OptConfig::default(), &query, None).unwrap();
        assert!(co.stats.iterations <= MAX_CO_ITERATIONS);
        assert!(!co.stats.cost_trajectory.is_empty());
        for w in co.stats.cost_trajectory.windows(2) {
            assert!(w[1] < w[0], "accepted costs must strictly decrease: {w:?}");
        }
    }

    #[test]
    fn co_optimized_plan_executes_to_the_same_answers() {
        let (program, db) = big_small();
        let query = parse_query("q(A)?").unwrap();
        let co = co_optimize(&program, &db, &OptConfig::default(), &query, None).unwrap();
        let cfg = FixpointConfig::default()
            .with_analysis(ldl_eval::naive::AnalysisPolicy::Off)
            .with_threads(1);
        let mut with_override = co.execute(&program, &db, &cfg).unwrap();
        let mut without = co.plan.execute(&program, &db, &cfg).unwrap();
        with_override.tuples.canonicalize();
        without.tuples.canonicalize();
        assert_eq!(with_override.tuples, without.tuples);
        assert_eq!(with_override.metrics, without.metrics);
        // 40 big tuples with second column i % 10; small holds 0..4.
        assert_eq!(with_override.tuples.len(), 16);
    }

    #[test]
    fn inferred_estimates_flow_through_every_pricing_iteration() {
        let text = "tc(X, Y) <- e(X, Y).\ntc(X, Y) <- e(X, Z), tc(Z, Y).\n\
                    e(1, 2). e(2, 3). e(3, 4).";
        let program = parse_program(text).unwrap();
        let db = Database::from_program(&program);
        let query = parse_query("tc(1, B)?").unwrap();
        let estimates = EstimateCatalog::infer(&program, &db);
        let co = co_optimize(
            &program,
            &db,
            &OptConfig::default(),
            &query,
            Some(&estimates),
        )
        .unwrap();
        assert!(co.plan.cost.is_finite());
        let cfg = FixpointConfig::default().with_analysis(ldl_eval::naive::AnalysisPolicy::Off);
        let mut got = co.execute(&program, &db, &cfg).unwrap();
        got.tuples.canonicalize();
        let baseline = co_optimize(&program, &db, &OptConfig::default(), &query, None).unwrap();
        let mut base = baseline.execute(&program, &db, &cfg).unwrap();
        base.tuples.canonicalize();
        // Estimates reshape pricing, never answers.
        assert_eq!(got.tuples, base.tuples);
    }

    #[test]
    fn stable_fixpoint_on_a_recursive_program() {
        let text = "tc(X, Y) <- e(X, Y).\ntc(X, Y) <- e(X, Z), tc(Z, Y).\n\
                    e(1, 2). e(2, 3). e(3, 4).";
        let program = parse_program(text).unwrap();
        let db = Database::from_program(&program);
        let query = parse_query("tc(1, B)?").unwrap();
        let co = co_optimize(&program, &db, &OptConfig::default(), &query, None).unwrap();
        assert!(co.stats.iterations <= MAX_CO_ITERATIONS);
        let cfg = FixpointConfig::default().with_analysis(ldl_eval::naive::AnalysisPolicy::Off);
        let mut got = co.execute(&program, &db, &cfg).unwrap();
        got.tuples.canonicalize();
        assert_eq!(got.tuples.len(), 3);
    }
}
