//! Inferred statistics for the cost model: the abstract interpreter's
//! cardinality intervals and per-argument distinct bounds, packaged for
//! the optimizer to price plans with instead of the uniform defaults.
//!
//! [`EstimateCatalog::infer`] runs `ldl_analysis::absint` over the
//! program with the actual database as the extensional world and keeps
//! every *finite* upper bound:
//!
//! * per-predicate [`Stats`] (cardinality = the interval's upper bound,
//!   per-column distinct = the flow/constant-set bound) — consulted for
//!   base-atom access pricing, where it replaces the pessimistic
//!   `1000 × 100` default for relations the database has never seen;
//! * per-clique sizes — consulted by OPT's clique size estimate, where
//!   the interpreter's value-flow bound (≈ the product of the argument
//!   domains actually reachable) caps the uniform
//!   `(exit + growth) × depth` heuristic: the bound provably majorizes
//!   the true size, so the capped guess is never farther from it.
//!
//! Upper bounds keep the estimates sound in the direction that matters
//! for safety pruning: a plan that looks finite under the catalog is
//! finite in truth. Infinite bounds (value-generating recursion) are
//! simply not recorded, leaving the heuristic in place.

use ldl_analysis::absint;
use ldl_core::{Pred, Program};
use ldl_storage::{Database, Stats};
use std::collections::HashMap;

/// Inferred cardinalities/selectivities, attached to an optimizer via
/// [`crate::Optimizer::with_estimates`].
#[derive(Clone, Debug, Default)]
pub struct EstimateCatalog {
    stats: HashMap<Pred, Stats>,
    clique_sizes: HashMap<Pred, f64>,
}

impl EstimateCatalog {
    /// Runs the abstract interpreter over `program` seeded from `db`
    /// and records every finite bound.
    pub fn infer(program: &Program, db: &Database) -> EstimateCatalog {
        let analysis = absint::interpret(program, Some(db));
        let mut stats = HashMap::new();
        let mut clique_sizes = HashMap::new();
        for (pred, pa) in &analysis.preds {
            if !pa.card_hi.is_finite() {
                continue;
            }
            let distinct: Vec<f64> = pa
                .args
                .iter()
                .map(|a| {
                    if a.distinct.is_finite() {
                        a.distinct
                    } else {
                        pa.card_hi
                    }
                })
                .collect();
            stats.insert(*pred, Stats::synthetic(pa.card_hi, distinct));
            if analysis.recursive.contains(pred) {
                clique_sizes.insert(*pred, pa.card_hi.max(1.0));
            }
        }
        EstimateCatalog {
            stats,
            clique_sizes,
        }
    }

    /// Inferred statistics for `pred`, when the interpreter found a
    /// finite bound.
    pub fn stats(&self, pred: Pred) -> Option<&Stats> {
        self.stats.get(&pred)
    }

    /// Inferred size bound for a recursive clique predicate.
    pub fn clique_size(&self, pred: Pred) -> Option<f64> {
        self.clique_sizes.get(&pred).copied()
    }

    /// Number of predicates with recorded statistics.
    pub fn len(&self) -> usize {
        self.stats.len()
    }

    /// True when nothing finite was inferred.
    pub fn is_empty(&self) -> bool {
        self.stats.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldl_core::parser::parse_program;
    use ldl_core::Term;
    use ldl_storage::{Relation, Tuple};

    fn edge_db(n: i64) -> Database {
        let mut db = Database::new();
        let mut rel = Relation::new(2);
        for i in 0..n {
            rel.insert(Tuple(vec![Term::int(i), Term::int(i + 1)]));
        }
        db.set_relation(Pred::new("e", 2), rel);
        db
    }

    #[test]
    fn infers_exact_base_and_bounded_clique_sizes() {
        let program =
            parse_program("tc(X, Y) <- e(X, Y).\ntc(X, Y) <- e(X, Z), tc(Z, Y).").unwrap();
        let db = edge_db(10);
        let cat = EstimateCatalog::infer(&program, &db);
        let e = cat.stats(Pred::new("e", 2)).unwrap();
        assert_eq!(e.cardinality, 10.0);
        let tc = cat.clique_size(Pred::new("tc", 2)).unwrap();
        // Value-flow bound: both arguments draw from e's 11-value
        // domain columns (10 distinct each side), so the bound is ≈
        // 10 × 10 — far below the uniform heuristic's
        // (exit + growth) × depth but above the true n(n+1)/2 = 55.
        assert!(tc >= 55.0, "{tc}");
        assert!(tc <= 200.0, "{tc}");
    }

    #[test]
    fn unbounded_recursion_records_nothing() {
        let program = parse_program("up(X) <- e(X, _Y).\nup(Y) <- up(X), Y = X + 1.").unwrap();
        let cat = EstimateCatalog::infer(&program, &edge_db(4));
        assert!(cat.clique_size(Pred::new("up", 1)).is_none());
        // The base relation is still recorded.
        assert!(cat.stats(Pred::new("e", 2)).is_some());
    }
}
