//! NR-OPT and OPT: the integrated optimization algorithms.
//!
//! This module reproduces Figures 7-1 and 7-2 of the paper:
//!
//! * **AND nodes** (rule bodies): the chosen search strategy enumerates
//!   body permutations; the binding implied by the permutation flows
//!   sideways (SIP); selects/projects are implicitly pushed (reflected in
//!   per-literal restricted costs), so searching `{MP, PR}` finds the
//!   optimum of `{MP, PR, PS, PP, EL}`.
//! * **OR nodes** (derived predicates): each is optimized at most once
//!   per binding pattern; results are memoized and re-read on every
//!   later reference with the same binding — the paper's key device for
//!   the `O(N·2^k·2^n)` bound.
//! * **CC nodes** (recursive cliques): enumerate *c-permutations* (one
//!   body order per recursive rule), adorn the program under each, then
//!   cost every applicable recursive method (naive, semi-naive, magic
//!   sets, counting) and keep the minimum.
//! * **Safety**: orderings that hit a non-EC evaluable predicate, leave
//!   head variables unbound, or belong to a clique without a
//!   well-founded order cost `+∞`; if the final cost is still infinite,
//!   [`Optimizer::optimize`] reports the query unsafe, exactly as §8.2
//!   prescribes.

use crate::cost::{AccessPath, CostModel, CostParams, DefaultCostModel, PlanCost, INFINITE_COST};
use crate::safety;
use crate::search::anneal::{anneal_generic, AnnealParams};
use crate::search::Strategy;
use ldl_core::adorn::{adorn_atom, adorn_program, FixedSip, GreedySip, SipStrategy};
use ldl_core::binding::Adornment;
use ldl_core::depgraph::{Clique, DependencyGraph};
use ldl_core::{LdlError, Literal, Pred, Program, Query, Result, Rule, Symbol};
use ldl_eval::engine::{evaluate_query_sip, QueryAnswer};
use ldl_eval::naive::FixpointConfig;
use ldl_eval::Method;
use ldl_index::{range_demand, IndexCatalog};
use ldl_storage::{Database, Stats};
use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::rc::Rc;

/// How the CC-node search explores c-permutations (one body order per
/// recursive rule).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum CliqueSearch {
    /// Iterative co-adornment fixpoint: start from the identity
    /// c-permutation, re-adorn the clique under the current orders, let
    /// the rule-level enumerator propose the best order per adorned
    /// variant, accept the proposal only on a strict total-cost
    /// improvement, and stop at a stable c-permutation or the round
    /// cap. Work is O(rounds × Σ per-rule enumeration) instead of the
    /// sweep's Π nᵢ! — this is what carries recursive rules past the
    /// E3 n≈10 cliff. Terminates: each accepted round strictly
    /// decreases the cost over the finite c-permutation space, and
    /// [`CLIQUE_FIXPOINT_MAX_ROUNDS`] bounds the rounds regardless.
    #[default]
    Fixpoint,
    /// The brute sweep: exhaustive cross-product of per-rule
    /// permutations below `max_cpermutations`, simulated annealing
    /// above. Kept as the oracle/ablation.
    Sweep,
}

/// Round cap of [`CliqueSearch::Fixpoint`] — the proved termination
/// bound is strict cost decrease over a finite space, this is the belt
/// on top of it.
pub const CLIQUE_FIXPOINT_MAX_ROUNDS: usize = 8;

/// Optimizer configuration.
#[derive(Clone, Debug)]
pub struct OptConfig {
    /// Search strategy for conjunct (rule body) ordering.
    pub strategy: Strategy,
    /// C-permutation search for recursive cliques.
    pub clique_search: CliqueSearch,
    /// Recursive methods the optimizer may choose from.
    pub methods: Vec<Method>,
    /// Whether base data may be assumed acyclic (a prerequisite for the
    /// counting method's termination; off by default — conservative).
    pub assume_acyclic: bool,
    /// Above this many literals, `Strategy::Exhaustive` falls back to DP.
    pub max_exhaustive_literals: usize,
    /// Above this many c-permutations, the clique sweep switches to
    /// simulated annealing (and the fixpoint's unsafe-rescue gives up).
    pub max_cpermutations: usize,
    /// Annealing schedule for both rule orders and c-permutations.
    pub anneal: AnnealParams,
    /// RNG seed for annealing.
    pub seed: u64,
    /// Binding-pattern memoization of OR-subtrees (Fig. 7-1 step 2).
    /// Disable only for the E4 ablation.
    pub memo_enabled: bool,
    /// Cost model constants.
    pub cost_params: CostParams,
}

impl Default for OptConfig {
    fn default() -> Self {
        OptConfig {
            strategy: Strategy::Memo,
            clique_search: CliqueSearch::default(),
            methods: Method::ALL.to_vec(),
            assume_acyclic: false,
            max_exhaustive_literals: 8,
            max_cpermutations: 4000,
            anneal: AnnealParams::default(),
            seed: 0xDA7A,
            memo_enabled: true,
            cost_params: CostParams::default(),
        }
    }
}

/// Work counters (experiment E4's subject).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OptStats {
    /// OR-subtree optimizations actually performed.
    pub subtree_optimizations: usize,
    /// OR-subtree requests served from the binding-indexed memo.
    pub memo_hits: usize,
    /// Complete rule orders costed.
    pub orders_probed: usize,
    /// Clique c-permutations costed.
    pub cpermutations_probed: usize,
    /// Prefix extensions walked by the memoized enumerator
    /// ([`Strategy::Memo`]) — the count the E3-successor gate compares
    /// against n! (exhaustive walks every complete order).
    pub explored_plans: usize,
    /// Candidate prefixes the enumerator dropped because a memoized
    /// state with the same (subset, fold-tail) key already dominated
    /// them on both cost and cardinality.
    pub enum_memo_hits: usize,
}

/// Plan for one rule under one head binding.
#[derive(Clone, Debug)]
pub struct RulePlan {
    /// Rule index in the program.
    pub rule_index: usize,
    /// Head binding this plan serves.
    pub head_adornment: Adornment,
    /// Chosen body order (original literal indexes).
    pub order: Vec<usize>,
    /// Estimated cost per binding tuple.
    pub cost: f64,
    /// Expected result tuples per binding tuple.
    pub fanout: f64,
}

/// How a predicate+binding is computed.
#[derive(Clone, Debug)]
pub enum PredPlanKind {
    /// Base relation access.
    Base,
    /// Nonrecursive derived predicate: union of rule plans.
    Union(Vec<RulePlan>),
    /// Contracted clique (CC node): fixpoint with a chosen method and
    /// one body order per recursive rule (the winning c-permutation).
    Clique {
        /// The fixpoint method chosen.
        method: Method,
        /// Chosen order per recursive rule index.
        sips: BTreeMap<usize, Vec<usize>>,
        /// Estimated full clique cardinality.
        full_size: f64,
        /// Estimated cost of each alternative method (for reporting),
        /// infinite where inapplicable/unsafe.
        method_costs: Vec<(Method, f64)>,
    },
}

/// Memoized plan for (predicate, binding pattern).
#[derive(Clone, Debug)]
pub struct PredPlan {
    /// The predicate.
    pub pred: Pred,
    /// The binding pattern served.
    pub adornment: Adornment,
    /// Cost estimates.
    pub cost: PlanCost,
    /// Plan structure.
    pub kind: PredPlanKind,
}

/// The result of optimizing one query form.
#[derive(Clone, Debug)]
pub struct OptimizedQuery {
    /// The query that was optimized.
    pub query: Query,
    /// Total estimated cost (setup + one probe).
    pub cost: f64,
    /// Estimated number of answers.
    pub estimated_answers: f64,
    /// Plan for the query predicate.
    pub plan: Rc<PredPlan>,
    /// Orders chosen for every (rule, head adornment) seen.
    pub orders: HashMap<(usize, Adornment), Vec<usize>>,
    /// Clique SIPs chosen (rule index → order), adornment-independent.
    pub clique_orders: HashMap<usize, Vec<usize>>,
    /// Method to use for the top-level execution.
    pub method: Method,
    /// Optimizer work counters.
    pub stats: OptStats,
}

/// The SIP the executor uses: exact per-(rule, adornment) orders where
/// the optimizer recorded them, clique orders per rule, greedy fallback.
#[derive(Clone, Debug, Default)]
pub struct PlannedSip {
    per_adornment: HashMap<(usize, Adornment), Vec<usize>>,
    per_rule: HashMap<usize, Vec<usize>>,
}

impl SipStrategy for PlannedSip {
    fn permutation(&self, rule_index: usize, rule: &Rule, head_adornment: Adornment) -> Vec<usize> {
        if let Some(o) = self.per_adornment.get(&(rule_index, head_adornment)) {
            return o.clone();
        }
        if let Some(o) = self.per_rule.get(&rule_index) {
            return o.clone();
        }
        GreedySip.permutation(rule_index, rule, head_adornment)
    }
}

impl OptimizedQuery {
    /// The SIP strategy encoding this plan's ordering decisions.
    pub fn sip(&self) -> PlannedSip {
        PlannedSip {
            per_adornment: self.orders.clone(),
            per_rule: self.clique_orders.clone(),
        }
    }

    /// Executes the plan against real data. The chosen recursive method
    /// and SIPs are honored, with two defensive fallbacks:
    ///
    /// * a **counting** plan that diverges at run time (the data turned
    ///   out cyclic — the acyclicity assumption was the optimizer's, not
    ///   a theorem) falls back to magic sets, which handles cycles;
    /// * a rewriting that does not apply at all (validation error) falls
    ///   back to plain semi-naive evaluation.
    pub fn execute(
        &self,
        program: &Program,
        db: &Database,
        cfg: &FixpointConfig,
    ) -> Result<QueryAnswer> {
        let sip = self.sip();
        let attempt = evaluate_query_sip(program, db, &self.query, self.method, cfg, &sip);
        match attempt {
            Err(LdlError::Eval(_) | LdlError::Validation(_)) if self.method == Method::Counting => {
                // Divergence (cyclic data) or inapplicability: magic is
                // the binding-propagating fallback.
                match evaluate_query_sip(program, db, &self.query, Method::Magic, cfg, &sip) {
                    Err(LdlError::Validation(_)) => {
                        evaluate_query_sip(program, db, &self.query, Method::SemiNaive, cfg, &sip)
                    }
                    other => other,
                }
            }
            Err(LdlError::Validation(_)) if self.method != Method::SemiNaive => {
                evaluate_query_sip(program, db, &self.query, Method::SemiNaive, cfg, &sip)
            }
            other => other,
        }
    }
}

/// The LDL query optimizer.
pub struct Optimizer<'a> {
    program: &'a Program,
    db: &'a Database,
    graph: DependencyGraph,
    model: DefaultCostModel,
    cfg: OptConfig,
    memo: RefCell<HashMap<(Pred, Adornment), Rc<PredPlan>>>,
    /// Provisional costs for clique predicates while their CC node is
    /// being costed (breaks the estimation cycle).
    overlay: RefCell<HashMap<Pred, f64>>, // pred -> provisional full size
    stats: RefCell<OptStats>,
    /// Selected-index catalog, when the caller wants base accesses
    /// priced per physical path ([`AccessPath`]) instead of uniformly.
    index_catalog: Option<IndexCatalog>,
    /// Inferred statistics from the abstract interpreter, when the
    /// caller wants cardinalities/selectivities from the program + data
    /// instead of uniform defaults ([`crate::EstimateCatalog`]).
    estimates: Option<crate::EstimateCatalog>,
    /// Derived predicates (range-fold pricing applies to base atoms
    /// only — derived atoms are priced by their own plans).
    derived: BTreeSet<Pred>,
}

impl<'a> Optimizer<'a> {
    /// Builds an optimizer over a program and a database (statistics).
    pub fn new(program: &'a Program, db: &'a Database, cfg: OptConfig) -> Optimizer<'a> {
        let graph = DependencyGraph::build(program);
        let model = DefaultCostModel::new(cfg.cost_params.clone());
        let derived = program.derived_preds();
        Optimizer {
            program,
            db,
            graph,
            model,
            cfg,
            memo: RefCell::new(HashMap::new()),
            overlay: RefCell::new(HashMap::new()),
            stats: RefCell::new(OptStats::default()),
            index_catalog: None,
            estimates: None,
            derived,
        }
    }

    /// Optimizer with default configuration.
    pub fn with_defaults(program: &'a Program, db: &'a Database) -> Optimizer<'a> {
        Optimizer::new(program, db, OptConfig::default())
    }

    /// Attaches an explicit selected-index catalog: base accesses are
    /// then priced per physical path — ordered-prefix probes for bound
    /// sets the catalog serves, on-demand hash probes otherwise.
    pub fn with_index_catalog(mut self, catalog: IndexCatalog) -> Optimizer<'a> {
        self.index_catalog = Some(catalog);
        self
    }

    /// [`Optimizer::with_index_catalog`] with the catalog solved from
    /// the program's own search signatures (the executor's default
    /// `AccessPaths::Selected` policy).
    pub fn with_selected_indexes(self) -> Optimizer<'a> {
        let catalog = IndexCatalog::build(self.program);
        self.with_index_catalog(catalog)
    }

    /// Attaches inferred statistics: base accesses and clique size
    /// estimates then use the abstract interpreter's cardinality
    /// bounds instead of uniform defaults.
    pub fn with_estimates(mut self, estimates: crate::EstimateCatalog) -> Optimizer<'a> {
        self.estimates = Some(estimates);
        self
    }

    /// [`Optimizer::with_estimates`] with the catalog inferred from
    /// this optimizer's own program and database.
    pub fn with_inferred_estimates(self) -> Optimizer<'a> {
        let cat = crate::EstimateCatalog::infer(self.program, self.db);
        self.with_estimates(cat)
    }

    /// Statistics for a base predicate: the inferred catalog's bound
    /// when available, else the database's (measured or default).
    fn pred_stats(&self, pred: Pred) -> Stats {
        if let Some(est) = self.estimates.as_ref().and_then(|e| e.stats(pred)) {
            return est.clone();
        }
        self.db.stats(pred)
    }

    /// Work counters accumulated so far.
    pub fn stats(&self) -> OptStats {
        *self.stats.borrow()
    }

    /// Optimizes one query form. Returns `Err(LdlError::Unsafe)` when no
    /// execution in the space has finite cost (§8.2: "a proper message
    /// must inform the user that the query is unsafe").
    pub fn optimize(&self, query: &Query) -> Result<OptimizedQuery> {
        self.program.validate()?;
        self.graph.check_stratified()?;
        let pred = query.pred();
        let ad = query.adornment();
        let plan = self.optimize_pred(pred, ad);
        if plan.cost.is_unsafe() {
            return Err(LdlError::Unsafe(format!(
                "no safe execution exists for query form {pred}.{ad}; \
                 every ordering hits a non-effectively-computable literal, an unbound \
                 head variable, or a recursive clique without a well-founded order"
            )));
        }
        // Collect ordering decisions from the memo.
        let mut orders = HashMap::new();
        let mut clique_orders = HashMap::new();
        for plan in self.memo.borrow().values() {
            match &plan.kind {
                PredPlanKind::Union(rules) => {
                    for rp in rules {
                        orders.insert((rp.rule_index, rp.head_adornment), rp.order.clone());
                    }
                }
                PredPlanKind::Clique { sips, .. } => {
                    for (ri, o) in sips {
                        clique_orders.insert(*ri, o.clone());
                    }
                }
                PredPlanKind::Base => {}
            }
        }
        let method = match &plan.kind {
            PredPlanKind::Clique { method, .. } => *method,
            _ => {
                // Nonrecursive query predicate: propagate bindings with
                // magic when bound, otherwise evaluate directly.
                if ad.bound_count() > 0 || !self.graph.cliques().is_empty() {
                    Method::Magic
                } else {
                    Method::SemiNaive
                }
            }
        };
        Ok(OptimizedQuery {
            query: query.clone(),
            cost: plan.cost.total(1.0),
            estimated_answers: plan.cost.fanout,
            plan,
            orders,
            clique_orders,
            method,
            stats: self.stats(),
        })
    }

    /// NR-OPT step 2 / OPT steps 2–3: the per-(pred, binding) plan.
    pub fn optimize_pred(&self, pred: Pred, ad: Adornment) -> Rc<PredPlan> {
        // Provisional clique overlay (during CC costing): consulted before
        // the memo and never memoized — it is a temporary stand-in that
        // breaks the size-estimation cycle.
        if let Some(&size) = self.overlay.borrow().get(&pred) {
            let cost = self.restricted_cost(size, pred.arity, ad);
            return Rc::new(PredPlan {
                pred,
                adornment: ad,
                cost,
                kind: PredPlanKind::Base,
            });
        }
        if self.cfg.memo_enabled {
            if let Some(hit) = self.memo.borrow().get(&(pred, ad)) {
                self.stats.borrow_mut().memo_hits += 1;
                return hit.clone();
            }
        }
        self.stats.borrow_mut().subtree_optimizations += 1;
        let plan = self.compute_pred_plan(pred, ad);
        let rc = Rc::new(plan);
        if self.cfg.memo_enabled {
            self.memo.borrow_mut().insert((pred, ad), rc.clone());
        }
        rc
    }

    fn compute_pred_plan(&self, pred: Pred, ad: Adornment) -> PredPlan {
        if !self.derived.contains(&pred) {
            let stats = self.pred_stats(pred);
            let bound = ad.bound_positions();
            let cost = match &self.index_catalog {
                Some(cat) => {
                    let path = if bound.is_empty() {
                        AccessPath::FullScan
                    } else if cat.lookup(pred, &bound).is_some() {
                        AccessPath::OrderedPrefix
                    } else {
                        AccessPath::HashProbe
                    };
                    self.model.indexed_access(&stats, &bound, path)
                }
                None => self.model.base_access(&stats, &bound),
            };
            return PredPlan {
                pred,
                adornment: ad,
                cost,
                kind: PredPlanKind::Base,
            };
        }
        if let Some(cid) = self.graph.clique_id_of(pred) {
            return self.optimize_clique(cid, pred, ad);
        }
        // Nonrecursive derived predicate: optimize every rule, union.
        let mut rule_plans = Vec::new();
        let mut parts = Vec::new();
        for (ri, rule) in self.program.rules_for(pred) {
            let rp = self.optimize_rule(ri, rule, ad);
            parts.push(PlanCost {
                setup: 0.0,
                probe: rp.cost,
                fanout: rp.fanout,
                stats: Stats::uniform(
                    rp.fanout,
                    pred.arity,
                    self.model.derived_distinct(rp.fanout),
                ),
            });
            rule_plans.push(rp);
        }
        let cost = self.model.union_of(&parts, pred.arity);
        PredPlan {
            pred,
            adornment: ad,
            cost,
            kind: PredPlanKind::Union(rule_plans),
        }
    }

    /// PlanCost of accessing an estimated relation of `size` tuples
    /// restricted by the bound positions of `ad`.
    fn restricted_cost(&self, size: f64, arity: usize, ad: Adornment) -> PlanCost {
        let d = self.model.derived_distinct(size);
        let mut fanout = size.max(0.0);
        for _ in 0..ad.bound_count() {
            fanout /= d.max(1.0);
        }
        let fanout = fanout.max(if size > 0.0 { 1e-6 } else { 0.0 });
        PlanCost {
            setup: 0.0,
            probe: fanout.max(1.0),
            fanout,
            stats: Stats::uniform(size, arity, d),
        }
    }

    // ------------------------------------------------------------------
    // AND nodes: rule-order search (§7.1 strategies at the rule level).
    // ------------------------------------------------------------------

    /// Cost of executing `rule`'s body in `order` under `head_ad`:
    /// pipelined left-to-right, each derived literal priced by its own
    /// optimized plan for the adornment the prefix implies. Returns
    /// `(cost, fanout)`; infinite cost marks unsafe orders.
    pub fn order_cost(&self, rule: &Rule, head_ad: Adornment, order: &[usize]) -> (f64, f64) {
        self.stats.borrow_mut().orders_probed += 1;
        let (cost, card, bound) = self.walk_cost(rule, head_ad, order);
        if !cost.is_finite() || !rule.head.vars().iter().all(|v| bound.contains(v)) {
            return (INFINITE_COST, INFINITE_COST); // unsafe or infinite answer
        }
        (cost, card)
    }

    /// The shared pipelined walk behind [`Optimizer::order_cost`] and
    /// the DP's partial-prefix costing: returns `(cost, card, bound)`,
    /// with infinite cost marking an unsafe prefix.
    ///
    /// When an index catalog is attached, a base atom followed (in the
    /// order) by bound comparisons forming a collected range demand the
    /// catalog serves is priced as one [`AccessPath::Range`] probe and
    /// the folded comparisons are skipped — the model prices a range
    /// probe exactly where the executor will issue one.
    fn walk_cost(
        &self,
        rule: &Rule,
        head_ad: Adornment,
        prefix: &[usize],
    ) -> (f64, f64, HashSet<Symbol>) {
        let p = self.model.params().clone();
        let mut bound: HashSet<Symbol> = HashSet::new();
        for (i, arg) in rule.head.args.iter().enumerate() {
            if head_ad.is_bound(i) {
                for v in arg.vars() {
                    bound.insert(v);
                }
            }
        }
        let mut consumed: HashSet<usize> = HashSet::new();
        let mut cost = 0.0f64;
        let mut card = 1.0f64;
        for (at, &li) in prefix.iter().enumerate() {
            match &rule.body[li] {
                Literal::Builtin(b) => {
                    if consumed.contains(&at) {
                        continue; // folded into the preceding range probe
                    }
                    if !b.is_ec(&bound) {
                        return (INFINITE_COST, INFINITE_COST, bound);
                    }
                    cost += card * p.cpu_per_tuple;
                    let binds = b.binds(&bound);
                    if binds.is_empty() {
                        card *= match b.op {
                            ldl_core::CmpOp::Eq => p.eq_selectivity,
                            _ => p.ineq_selectivity,
                        };
                    }
                    for v in binds {
                        bound.insert(v);
                    }
                }
                Literal::Atom(a) if a.negated => {
                    if !a.vars().iter().all(|v| bound.contains(v)) {
                        return (INFINITE_COST, INFINITE_COST, bound);
                    }
                    cost += card * p.cpu_per_tuple;
                    card *= p.neg_selectivity;
                }
                Literal::Atom(a) => {
                    // member/2: evaluable set predicate — needs its set
                    // bound, enumerates a handful of elements.
                    if a.pred == Pred::new("member", 2) {
                        if !a.args[1].vars().iter().all(|v| bound.contains(v)) {
                            return (INFINITE_COST, INFINITE_COST, bound);
                        }
                        cost += card * p.cpu_per_tuple;
                        card = (card * 4.0).min(p.cardinality_cap);
                        for v in a.vars() {
                            bound.insert(v);
                        }
                        continue;
                    }
                    if let Some(cat) = &self.index_catalog {
                        if !self.derived.contains(&a.pred) {
                            if let Some(d) = range_demand(&rule.body, prefix, at, &bound) {
                                if cat.lookup_range(a.pred, &d.eq_cols, d.range_col).is_some() {
                                    let stats = self.pred_stats(a.pred);
                                    let pc = self.model.indexed_access(
                                        &stats,
                                        &d.eq_cols,
                                        AccessPath::Range,
                                    );
                                    if pc.is_unsafe() {
                                        return (INFINITE_COST, INFINITE_COST, bound);
                                    }
                                    cost += pc.setup + card * pc.probe;
                                    card = (card * pc.fanout).min(p.cardinality_cap);
                                    // The first folded comparison's selectivity
                                    // is inside the range fanout; every further
                                    // folded bound tightens it like a filter.
                                    for _ in 1..d.consumed.len() {
                                        card *= p.ineq_selectivity;
                                    }
                                    for v in a.vars() {
                                        bound.insert(v);
                                    }
                                    consumed.extend(d.consumed.iter().copied());
                                    continue;
                                }
                            }
                        }
                    }
                    let sub_ad = adorn_atom(a, &bound);
                    let sub = self.optimize_pred(a.pred, sub_ad);
                    if sub.cost.is_unsafe() {
                        return (INFINITE_COST, INFINITE_COST, bound);
                    }
                    cost += sub.cost.setup + card * sub.cost.probe;
                    card = (card * sub.cost.fanout).min(p.cardinality_cap);
                    for v in a.vars() {
                        bound.insert(v);
                    }
                }
            }
        }
        (cost, card, bound)
    }

    /// Searches for the best body order of one rule under `head_ad`
    /// using the configured strategy (NR-OPT step 1).
    pub fn optimize_rule(&self, rule_index: usize, rule: &Rule, head_ad: Adornment) -> RulePlan {
        let n = rule.body.len();
        if n == 0 {
            let safe = rule.head.vars().iter().all(|v| {
                rule.head
                    .args
                    .iter()
                    .enumerate()
                    .any(|(i, arg)| head_ad.is_bound(i) && arg.vars().contains(v))
            });
            let (cost, fanout) = if safe {
                (0.0, 1.0)
            } else {
                (INFINITE_COST, INFINITE_COST)
            };
            return RulePlan {
                rule_index,
                head_adornment: head_ad,
                order: vec![],
                cost,
                fanout,
            };
        }
        let strategy = match self.cfg.strategy {
            Strategy::Exhaustive if n > self.cfg.max_exhaustive_literals => {
                Strategy::DynamicProgramming
            }
            s => s,
        };
        let (order, cost, fanout) = match strategy {
            Strategy::Exhaustive => self.search_exhaustive(rule, head_ad),
            Strategy::DynamicProgramming => self.search_dp(rule, head_ad),
            Strategy::Memo => self.search_memo(rule, head_ad, rule_index as u64),
            Strategy::Kbz => self
                .search_kbz(rule, head_ad)
                .unwrap_or_else(|| self.search_dp(rule, head_ad)),
            Strategy::Annealing => self.search_anneal(rule, head_ad, rule_index as u64),
        };
        RulePlan {
            rule_index,
            head_adornment: head_ad,
            order,
            cost,
            fanout,
        }
    }

    /// KBZ at the rule level: abstracts the body into a [`JoinGraph`]
    /// (one node per positive atom; cardinalities from the sub-plans
    /// restricted by the head binding; selectivities `1/max(d)` per
    /// shared unbound variable), runs the quadratic algorithm, then
    /// honestly re-costs the produced order. Returns `None` — caller
    /// falls back to DP — when the body contains builtins or negation
    /// (the ASI abstraction does not model them) or the KBZ order turns
    /// out unsafe under the exact cost walk.
    fn search_kbz(&self, rule: &Rule, head_ad: Adornment) -> Option<(Vec<usize>, f64, f64)> {
        use crate::joingraph::JoinGraph;
        use crate::search::kbz::optimize_kbz;
        let atoms: Vec<(usize, &ldl_core::Atom)> = rule
            .body
            .iter()
            .enumerate()
            .map(|(i, l)| match l {
                Literal::Atom(a) if !a.negated => Some((i, a)),
                _ => None,
            })
            .collect::<Option<Vec<_>>>()?;
        let n = atoms.len();
        if n < 3 {
            return None; // DP is trivially cheap
        }
        let mut head_bound: HashSet<Symbol> = HashSet::new();
        for (i, arg) in rule.head.args.iter().enumerate() {
            if head_ad.is_bound(i) {
                for v in arg.vars() {
                    head_bound.insert(v);
                }
            }
        }
        // Per-literal cardinalities under the head binding, and per-var
        // distinct counts for selectivity estimation.
        let mut cards = Vec::with_capacity(n);
        let mut var_distinct: Vec<HashMap<Symbol, f64>> = Vec::with_capacity(n);
        for (_, a) in &atoms {
            let ad = adorn_atom(a, &head_bound);
            let sub = self.optimize_pred(a.pred, ad);
            if sub.cost.is_unsafe() {
                return None;
            }
            cards.push(sub.cost.fanout.max(0.0));
            let mut dv = HashMap::new();
            for (k, t) in a.args.iter().enumerate() {
                if let ldl_core::Term::Var(v) = t {
                    if !head_bound.contains(v) {
                        let d = sub.cost.stats.distinct.get(k).copied().unwrap_or(1.0);
                        dv.insert(*v, d.max(1.0));
                    }
                }
            }
            var_distinct.push(dv);
        }
        let mut g = JoinGraph::new(cards);
        for i in 0..n {
            for j in i + 1..n {
                let mut sel = 1.0f64;
                for (v, di) in &var_distinct[i] {
                    if let Some(dj) = var_distinct[j].get(v) {
                        sel *= 1.0 / di.max(*dj);
                    }
                }
                if sel < 1.0 {
                    g.set_selectivity(i, j, sel.max(1e-12));
                }
            }
        }
        let result = optimize_kbz(&g);
        let order: Vec<usize> = result.order.iter().map(|&k| atoms[k].0).collect();
        let (cost, fanout) = self.order_cost(rule, head_ad, &order);
        if cost.is_finite() {
            Some((order, cost, fanout))
        } else {
            None
        }
    }

    fn search_exhaustive(&self, rule: &Rule, head_ad: Adornment) -> (Vec<usize>, f64, f64) {
        let n = rule.body.len();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut best: Option<(f64, f64, Vec<usize>)> = None;
        fn rec(
            this: &Optimizer,
            rule: &Rule,
            head_ad: Adornment,
            perm: &mut Vec<usize>,
            k: usize,
            best: &mut Option<(f64, f64, Vec<usize>)>,
        ) {
            if k == perm.len() {
                let (c, f) = this.order_cost(rule, head_ad, perm);
                match best {
                    Some((bc, _, _)) if *bc <= c => {}
                    _ => *best = Some((c, f, perm.clone())),
                }
                return;
            }
            for i in k..perm.len() {
                perm.swap(k, i);
                rec(this, rule, head_ad, perm, k + 1, best);
                perm.swap(k, i);
            }
        }
        rec(self, rule, head_ad, &mut perm, 0, &mut best);
        let (cost, fanout, order) = best.expect("n >= 1");
        (order, cost, fanout)
    }

    /// Selinger-style DP over literal subsets: state per subset keeps the
    /// cheapest prefix (cost, card, bound set is subset-determined).
    fn search_dp(&self, rule: &Rule, head_ad: Adornment) -> (Vec<usize>, f64, f64) {
        // For DP we need incremental extension; reuse order_cost on the
        // reconstructed prefix for simplicity and exactness of safety
        // checks. Subsets: best[mask] = (cost, order).
        let n = rule.body.len();
        assert!(n <= 20, "rule with more than 20 literals: use annealing");
        let full = (1usize << n) - 1;
        let mut best: Vec<Option<(f64, Vec<usize>)>> = vec![None; full + 1];
        best[0] = Some((0.0, vec![]));
        for mask in 0..=full {
            let Some((cost_so_far, order_so_far)) = best[mask].clone() else {
                continue;
            };
            if !cost_so_far.is_finite() {
                continue;
            }
            for next in 0..n {
                if mask & (1 << next) != 0 {
                    continue;
                }
                let mut order = order_so_far.clone();
                order.push(next);
                // Evaluate the full prefix (cheap: prefix lengths are
                // small; correctness of EC checks is what matters).
                let (c, _) = self.prefix_cost(rule, head_ad, &order);
                let nmask = mask | (1 << next);
                match &best[nmask] {
                    Some((bc, _)) if *bc <= c => {}
                    _ => best[nmask] = Some((c, order)),
                }
            }
        }
        match &best[full] {
            Some((_, order)) => {
                let (c, f) = self.order_cost(rule, head_ad, order);
                (order.clone(), c, f)
            }
            None => ((0..n).collect(), INFINITE_COST, INFINITE_COST),
        }
    }

    /// Cost of a (possibly partial) prefix — used by the subset DP.
    /// Same walk as [`Optimizer::order_cost`] (including range-fold
    /// pricing) but without the head-variable check.
    fn prefix_cost(&self, rule: &Rule, head_ad: Adornment, prefix: &[usize]) -> (f64, f64) {
        let (cost, card, _) = self.walk_cost(rule, head_ad, prefix);
        (cost, card)
    }

    /// Memoized transformation-based enumeration: exact Pareto dynamic
    /// programming over literal subsets (DESIGN.md §17).
    ///
    /// **Memo key** = (subset mask, fold-tail). The bound-variable set
    /// after any *finite*-cost prefix is determined by the subset alone
    /// (atoms and `member` bind all their variables; an EC builtin ends
    /// with all of its variables bound — comparisons require them,
    /// equalities bind the single unknown; negation requires them), and
    /// every per-literal cost/cardinality step of [`walk_cost`] is
    /// nondecreasing in the entry cardinality, so two prefixes with the
    /// same key compare exactly by `(cost, card)` dominance: a
    /// dominated prefix cannot complete into a strictly cheaper plan.
    /// The fold-tail — the trailing `[base atom, comparison…]` run — is
    /// the one piece of arrangement the subset does not capture: a
    /// comparison appended behind such a run can fold into the atom's
    /// range probe ([`range_demand`] scans the run), repricing the
    /// prefix. The tail collapses to empty as soon as no fold-eligible
    /// comparison remains unplaced (or no catalog is attached), so
    /// pure-atom rules stay at exactly 2ⁿ states.
    ///
    /// Per key the frontier keeps every `(cost, card)`-minimal prefix;
    /// the minimum over full-mask frontiers is provably the exhaustive
    /// minimum — the brute-force oracle test pins this at n ≤ 6.
    /// Extensions walked are counted in [`OptStats::explored_plans`],
    /// dominance-pruned candidates in [`OptStats::enum_memo_hits`].
    fn search_memo(&self, rule: &Rule, head_ad: Adornment, salt: u64) -> (Vec<usize>, f64, f64) {
        let n = rule.body.len();
        if n > 22 {
            // 2^n states stop being "polynomial practice"; the anneal
            // is the honest fallback out there.
            return self.search_anneal(rule, head_ad, salt);
        }
        let member = Pred::new("member", 2);
        let fold_op = |li: usize| {
            matches!(&rule.body[li], Literal::Builtin(b) if matches!(
                b.op,
                ldl_core::CmpOp::Lt | ldl_core::CmpOp::Le | ldl_core::CmpOp::Gt | ldl_core::CmpOp::Ge
            ))
        };
        let fold_mask: u64 = (0..n)
            .filter(|&li| fold_op(li))
            .fold(0, |m, li| m | (1 << li));
        let folding = self.index_catalog.is_some() && fold_mask != 0;
        let tail_anchor = |li: usize| {
            matches!(&rule.body[li], Literal::Atom(a)
                if !a.negated && a.pred != member && !self.derived.contains(&a.pred))
        };
        type Frontier = Vec<(f64, f64, Vec<usize>)>;
        let mut memo: BTreeMap<(u64, Vec<usize>), Frontier> = BTreeMap::new();
        memo.insert((0, Vec::new()), vec![(0.0, 1.0, Vec::new())]);
        let full: u64 = (1u64 << n) - 1;
        for mask in 0..full {
            let states: Vec<(Vec<usize>, Frontier)> = memo
                .range((mask, Vec::new())..(mask + 1, Vec::new()))
                .map(|((_, tail), f)| (tail.clone(), f.clone()))
                .collect();
            for (tail, frontier) in states {
                for (_, _, order) in &frontier {
                    for li in 0..n {
                        if mask & (1 << li) != 0 {
                            continue;
                        }
                        let mut next = order.clone();
                        next.push(li);
                        self.stats.borrow_mut().explored_plans += 1;
                        let (c, k) = self.prefix_cost(rule, head_ad, &next);
                        if !c.is_finite() {
                            continue;
                        }
                        let nmask = mask | (1 << li);
                        let mut ntail: Vec<usize> = if !folding {
                            Vec::new()
                        } else if tail_anchor(li) {
                            vec![li]
                        } else if fold_op(li) && !tail.is_empty() {
                            let mut t = tail.clone();
                            t.push(li);
                            t
                        } else {
                            Vec::new()
                        };
                        if fold_mask & !nmask == 0 {
                            // No fold-eligible comparison left to place:
                            // the arrangement can no longer matter.
                            ntail.clear();
                        }
                        let slot = memo.entry((nmask, ntail)).or_default();
                        if slot.iter().any(|&(ec, ek, _)| ec <= c && ek <= k) {
                            self.stats.borrow_mut().enum_memo_hits += 1;
                            continue;
                        }
                        slot.retain(|&(ec, ek, _)| !(c <= ec && k <= ek));
                        let pos =
                            slot.partition_point(|&(ec, ek, _)| ec < c || (ec == c && ek < k));
                        slot.insert(pos, (c, k, next));
                    }
                }
            }
        }
        let mut best: Option<(f64, f64, Vec<usize>)> = None;
        for ((m, _), frontier) in memo.range((full, Vec::new())..) {
            debug_assert_eq!(*m, full);
            for (_, _, order) in frontier {
                let (c, f) = self.order_cost(rule, head_ad, order);
                match &best {
                    Some((bc, _, _)) if *bc <= c => {}
                    _ => best = Some((c, f, order.clone())),
                }
            }
        }
        match best {
            Some((c, f, order)) => (order, c, f),
            None => ((0..n).collect(), INFINITE_COST, INFINITE_COST),
        }
    }

    fn search_anneal(&self, rule: &Rule, head_ad: Adornment, salt: u64) -> (Vec<usize>, f64, f64) {
        let n = rule.body.len();
        let initial: Vec<usize> =
            safety::find_safe_order(rule, head_ad).unwrap_or_else(|| (0..n).collect());
        let (order, cost, _) = anneal_generic(
            initial,
            |o, rng| {
                let mut o = o.clone();
                if n >= 2 {
                    let i = rng.gen_range(0..n);
                    let mut j = rng.gen_range(0..n - 1);
                    if j >= i {
                        j += 1;
                    }
                    o.swap(i, j);
                }
                o
            },
            |o| self.order_cost(rule, head_ad, o).0,
            &self.cfg.anneal,
            self.cfg.seed ^ salt,
        );
        let (c, f) = self.order_cost(rule, head_ad, &order);
        debug_assert_eq!(c, cost);
        (order, c, f)
    }

    // ------------------------------------------------------------------
    // CC nodes: clique optimization (OPT Fig. 7-2 step 3).
    // ------------------------------------------------------------------

    fn optimize_clique(&self, cid: usize, pred: Pred, ad: Adornment) -> PredPlan {
        let clique = self.graph.cliques()[cid].clone();

        // Install a neutral provisional size first so that the size
        // estimation itself (which walks the recursive rules) does not
        // re-enter clique optimization, then refine the overlay with the
        // real estimate.
        for &p in &clique.preds {
            self.overlay.borrow_mut().insert(p, 1_000.0);
        }
        let full_size = self.estimate_clique_size(&clique);
        for &p in &clique.preds {
            self.overlay.borrow_mut().insert(p, full_size);
        }

        let result = self.search_cpermutations(&clique, pred, ad, full_size);

        for &p in &clique.preds {
            self.overlay.borrow_mut().remove(&p);
        }
        result
    }

    /// Rough unrestricted-size estimate for a clique: exit-rule output
    /// plus recursive per-round growth, amplified by the assumed
    /// fixpoint depth, capped.
    fn estimate_clique_size(&self, clique: &Clique) -> f64 {
        let p = self.model.params().clone();
        // Seed overlay with a neutral guess so recursive literals don't
        // recurse while we estimate.
        let mut exit_total = 0.0f64;
        for &ri in &clique.exit_rules {
            let rule = &self.program.rules[ri];
            let ad = Adornment::all_free(rule.head.pred.arity);
            let order = GreedySip.permutation(ri, rule, ad);
            let (_, fanout) = self.order_cost(rule, ad, &order);
            if fanout.is_finite() {
                exit_total += fanout;
            }
        }
        // Facts asserted directly on clique predicates count as exits.
        for &cp in &clique.preds {
            if let Some(rel) = self.db.relation(cp) {
                exit_total += rel.len() as f64;
            }
        }
        let mut growth = 0.0f64;
        for &ri in &clique.recursive_rules {
            let rule = &self.program.rules[ri];
            let ad = Adornment::all_free(rule.head.pred.arity);
            let order = GreedySip.permutation(ri, rule, ad);
            let (_, fanout) = self.order_cost(rule, ad, &order);
            if fanout.is_finite() {
                growth += fanout;
            }
        }
        let guess = (exit_total + growth) * p.fixpoint_depth;
        // The interpreter's value-flow bound is a provable upper bound
        // on the clique's distinct tuples, so capping the growth guess
        // by it can only move the estimate toward the truth (and leaves
        // it untouched when the heuristic is already below the bound).
        let cap = self.estimates.as_ref().and_then(|est| {
            clique
                .preds
                .iter()
                .filter_map(|&cp| est.clique_size(cp))
                .fold(None, |acc: Option<f64>, sz| {
                    Some(acc.map_or(sz, |a| a.max(sz)))
                })
        });
        let guess = match cap {
            Some(bound) => guess.min(bound),
            None => guess,
        };
        guess.clamp(1.0, p.cardinality_cap)
    }

    fn search_cpermutations(
        &self,
        clique: &Clique,
        pred: Pred,
        ad: Adornment,
        full_size: f64,
    ) -> PredPlan {
        let rec_rules: Vec<usize> = clique.recursive_rules.clone();
        let (best_cperm, (best_cost, best_method, best_costs)) = match self.cfg.clique_search {
            CliqueSearch::Fixpoint => {
                self.search_cperm_fixpoint(clique, pred, ad, full_size, &rec_rules)
            }
            CliqueSearch::Sweep => self.search_cperm_sweep(clique, pred, ad, full_size, &rec_rules),
        };

        let sips: BTreeMap<usize, Vec<usize>> = rec_rules.iter().copied().zip(best_cperm).collect();
        let fanout = {
            let d = self.model.derived_distinct(full_size);
            let mut f = full_size;
            for _ in 0..ad.bound_count() {
                f /= d.max(1.0);
            }
            f.max(1e-6)
        };
        let cost = if best_cost.is_finite() {
            PlanCost {
                setup: best_cost,
                probe: fanout.max(1.0),
                fanout,
                stats: Stats::uniform(
                    full_size,
                    pred.arity,
                    self.model.derived_distinct(full_size),
                ),
            }
        } else {
            PlanCost::unsafe_plan(pred.arity)
        };
        PredPlan {
            pred,
            adornment: ad,
            cost,
            kind: PredPlanKind::Clique {
                method: best_method,
                sips,
                full_size,
                method_costs: best_costs,
            },
        }
    }

    /// [`CliqueSearch::Fixpoint`]: iterative co-adornment. Starting
    /// from the identity c-permutation, each round adorns the clique
    /// under the current orders, asks the rule-level enumerator for the
    /// best order of every adorned variant, and replaces a rule's order
    /// with the candidate minimizing the summed per-variant body cost.
    /// A changed proposal is accepted only when the full c-permutation
    /// costing strictly improves — so the rounds walk a strictly
    /// decreasing cost sequence over the finite c-permutation space and
    /// must terminate; [`CLIQUE_FIXPOINT_MAX_ROUNDS`] caps them anyway.
    /// An unsafe outcome (no finite cost found locally) falls back to
    /// the sweep when the space is small enough to afford it: some
    /// cliques have exactly one safe c-permutation that local proposals
    /// never reach.
    fn search_cperm_fixpoint(
        &self,
        clique: &Clique,
        pred: Pred,
        ad: Adornment,
        full_size: f64,
        rec_rules: &[usize],
    ) -> (Vec<Vec<usize>>, CpermCost) {
        let evaluate = |cperm: &[Vec<usize>]| -> CpermCost {
            self.stats.borrow_mut().cpermutations_probed += 1;
            self.evaluate_cpermutation(clique, pred, ad, full_size, rec_rules, cperm)
        };
        let mut cur: Vec<Vec<usize>> = rec_rules
            .iter()
            .map(|&ri| (0..self.program.rules[ri].body.len()).collect())
            .collect();
        let mut cur_cost = evaluate(&cur);
        for _round in 0..CLIQUE_FIXPOINT_MAX_ROUNDS {
            let mut sip = FixedSip::new();
            for (k, &ri) in rec_rules.iter().enumerate() {
                sip.set(ri, cur[k].clone());
            }
            let adorned = adorn_program(self.program, pred, ad, &sip);
            let mut proposal = cur.clone();
            for (k, &ri) in rec_rules.iter().enumerate() {
                let rule = &self.program.rules[ri];
                let ads: Vec<Adornment> = adorned
                    .rules
                    .iter()
                    .filter(|ar| ar.rule_index == ri && clique.preds.contains(&ar.head.pred))
                    .map(|ar| ar.head.adornment)
                    .collect();
                if ads.is_empty() {
                    continue;
                }
                // Candidates: the incumbent, plus the enumerator's
                // winner for each adorned variant of this rule. One
                // rule serving several variants keeps a single order —
                // the one minimizing the summed per-variant cost.
                let mut cands: Vec<Vec<usize>> = vec![cur[k].clone()];
                for &had in &ads {
                    let rp = self.optimize_rule(ri, rule, had);
                    if rp.cost.is_finite() && !cands.contains(&rp.order) {
                        cands.push(rp.order);
                    }
                }
                let score = |o: &[usize]| -> f64 {
                    ads.iter().map(|&had| self.order_cost(rule, had, o).0).sum()
                };
                let mut best = (score(&cands[0]), 0usize);
                for (ci, cand) in cands.iter().enumerate().skip(1) {
                    let s = score(cand);
                    if s < best.0 {
                        best = (s, ci);
                    }
                }
                proposal[k] = cands[best.1].clone();
            }
            if proposal == cur {
                break; // stable: re-adorning reproduces the orders
            }
            let prop_cost = evaluate(&proposal);
            if prop_cost.0 < cur_cost.0 {
                cur = proposal;
                cur_cost = prop_cost;
            } else {
                break; // no strict improvement: keep the incumbent
            }
        }
        if !cur_cost.0.is_finite() {
            let total: f64 = rec_rules
                .iter()
                .map(|&ri| factorial(self.program.rules[ri].body.len()))
                .product();
            if total <= self.cfg.max_cpermutations as f64 {
                return self.search_cperm_sweep(clique, pred, ad, full_size, rec_rules);
            }
        }
        (cur, cur_cost)
    }

    /// [`CliqueSearch::Sweep`]: the brute search the fixpoint replaced
    /// as the default — exhaustive below `max_cpermutations`, annealing
    /// above.
    fn search_cperm_sweep(
        &self,
        clique: &Clique,
        pred: Pred,
        ad: Adornment,
        full_size: f64,
        rec_rules: &[usize],
    ) -> (Vec<Vec<usize>>, CpermCost) {
        let body_lens: Vec<usize> = rec_rules
            .iter()
            .map(|&ri| self.program.rules[ri].body.len())
            .collect();
        let total: f64 = body_lens.iter().map(|&n| factorial(n)).product();

        let evaluate = |cperm: &[Vec<usize>]| -> CpermCost {
            self.stats.borrow_mut().cpermutations_probed += 1;
            self.evaluate_cpermutation(clique, pred, ad, full_size, rec_rules, cperm)
        };

        let identity: Vec<Vec<usize>> = body_lens.iter().map(|&n| (0..n).collect()).collect();

        if total <= self.cfg.max_cpermutations as f64 {
            // Exhaustive cross-product of per-rule permutations.
            let mut best: Option<(Vec<Vec<usize>>, CpermCost)> = None;
            let all_perms: Vec<Vec<Vec<usize>>> =
                body_lens.iter().map(|&n| all_permutations(n)).collect();
            let mut idx = vec![0usize; rec_rules.len()];
            loop {
                let cperm: Vec<Vec<usize>> = idx
                    .iter()
                    .enumerate()
                    .map(|(r, &i)| all_perms[r][i].clone())
                    .collect();
                let (cost, method, costs) = evaluate(&cperm);
                let better = best
                    .as_ref()
                    .map(|(_, (bc, _, _))| cost < *bc)
                    .unwrap_or(true);
                if better {
                    best = Some((cperm, (cost, method, costs)));
                }
                // Advance the mixed-radix counter.
                let mut k = 0;
                loop {
                    if k == idx.len() {
                        break;
                    }
                    idx[k] += 1;
                    if idx[k] < all_perms[k].len() {
                        break;
                    }
                    idx[k] = 0;
                    k += 1;
                }
                if k == idx.len() {
                    break;
                }
            }
            best.expect("at least the identity c-permutation")
        } else {
            // Simulated annealing over c-permutations: the neighbor
            // relation of §7.3 — swap two literals in ONE rule's
            // permutation.
            let cache = RefCell::new(HashMap::<Vec<Vec<usize>>, CpermCost>::new());
            let eval_cached = |cp: &Vec<Vec<usize>>| -> CpermCost {
                if let Some(hit) = cache.borrow().get(cp) {
                    return hit.clone();
                }
                let r = evaluate(cp);
                cache.borrow_mut().insert(cp.clone(), r.clone());
                r
            };
            let (best, cost, _) = anneal_generic(
                identity.clone(),
                |cp, rng| {
                    let mut cp = cp.clone();
                    let candidates: Vec<usize> = cp
                        .iter()
                        .enumerate()
                        .filter(|(_, p)| p.len() >= 2)
                        .map(|(i, _)| i)
                        .collect();
                    if let Some(&r) = candidates.get(
                        rng.gen_range(0..candidates.len().max(1))
                            .min(candidates.len().saturating_sub(1)),
                    ) {
                        let n = cp[r].len();
                        let i = rng.gen_range(0..n);
                        let mut j = rng.gen_range(0..n - 1);
                        if j >= i {
                            j += 1;
                        }
                        cp[r].swap(i, j);
                    }
                    cp
                },
                |cp| eval_cached(cp).0,
                &self.cfg.anneal,
                self.cfg.seed,
            );
            let (c, m, costs) = eval_cached(&best);
            debug_assert_eq!(c, cost);
            (best, (c, m, costs))
        }
    }

    /// Costs one c-permutation: adorn under the SIP it implies, check
    /// safety of every adorned clique rule, then price every applicable
    /// recursive method and return the cheapest.
    fn evaluate_cpermutation(
        &self,
        clique: &Clique,
        pred: Pred,
        ad: Adornment,
        full_size: f64,
        rec_rules: &[usize],
        cperm: &[Vec<usize>],
    ) -> CpermCost {
        let p = self.model.params().clone();
        let mut sip = FixedSip::new();
        for (k, &ri) in rec_rules.iter().enumerate() {
            sip.set(ri, cperm[k].clone());
        }
        // Exit rules keep greedy orders via the FixedSip fallback.
        let adorned = adorn_program(self.program, pred, ad, &sip);

        // Per-round cost: sum of adorned clique rules' body costs (per
        // binding tuple), with EC safety enforced by order_cost. Also
        // determine counting-eligibility with the same definition the
        // rewriting uses: at most one positive derived literal per rule
        // (a non-clique derived literal forks the depth counter too).
        let mut per_round = 0.0f64;
        let mut any_rule = false;
        let mut counting_linear = true;
        for ar in &adorned.rules {
            if !clique.preds.contains(&ar.head.pred) {
                continue;
            }
            let derived_lits = ar.body.iter().filter(|(_, ad)| ad.is_some()).count();
            if derived_lits > 1 {
                counting_linear = false;
            }
            any_rule = true;
            let rule = &self.program.rules[ar.rule_index];
            let (c, _) = self.order_cost(rule, ar.head.adornment, &ar.permutation);
            if !c.is_finite() {
                return (
                    INFINITE_COST,
                    Method::SemiNaive,
                    Method::ALL.iter().map(|&m| (m, INFINITE_COST)).collect(),
                );
            }
            per_round += c;
        }
        if !any_rule {
            // Degenerate (no reachable rules): treat as empty clique.
            per_round = 1.0;
        }

        // Method applicability + termination.
        let linear = clique.is_linear(self.program) && counting_linear;
        let bound_query = ad.bound_count() > 0;
        let d = self.model.derived_distinct(full_size);
        let rho = if bound_query {
            (p.magic_reach * (1.0 / d.max(1.0)).powi(ad.bound_count() as i32)).min(1.0)
        } else {
            1.0
        };

        let mut method_costs: Vec<(Method, f64)> = Vec::new();
        for &m in &self.cfg.methods {
            let propagates = matches!(m, Method::Magic | Method::Counting);
            let terminates = safety::clique_terminates(
                self.program,
                clique,
                ad,
                propagates,
                self.cfg.assume_acyclic,
            )
            .is_ok();
            let cost = if !terminates {
                INFINITE_COST
            } else {
                match m {
                    Method::Naive => full_size * per_round * p.fixpoint_depth,
                    Method::SemiNaive => full_size * per_round,
                    Method::Magic => {
                        // Magic narrows work to the reachable fraction but
                        // pays the rewriting overhead (extra magic rules).
                        full_size * rho * per_round * 1.2 + 1.0
                    }
                    Method::Counting => {
                        if linear && self.cfg.assume_acyclic {
                            // Counting's advantage over magic (no answer/
                            // binding re-join) only exists when there IS a
                            // binding to propagate; an all-free counting
                            // run just adds depth-indexed copies.
                            let factor = if bound_query {
                                p.counting_advantage
                            } else {
                                1.1
                            };
                            (full_size * rho * per_round * 1.2 + 1.0) * factor
                        } else {
                            INFINITE_COST
                        }
                    }
                }
            };
            method_costs.push((m, cost));
        }
        let (best_method, best_cost) = method_costs
            .iter()
            .copied()
            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("costs are comparable"))
            .unwrap_or((Method::SemiNaive, INFINITE_COST));
        (best_cost, best_method, method_costs)
    }
}

/// Outcome of costing one c-permutation: (best cost, best method,
/// per-method costs).
type CpermCost = (f64, Method, Vec<(Method, f64)>);

fn factorial(n: usize) -> f64 {
    (1..=n).map(|i| i as f64).product()
}

fn all_permutations(n: usize) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    let mut perm: Vec<usize> = (0..n).collect();
    fn rec(perm: &mut Vec<usize>, k: usize, out: &mut Vec<Vec<usize>>) {
        if k == perm.len() {
            out.push(perm.clone());
            return;
        }
        for i in k..perm.len() {
            perm.swap(k, i);
            rec(perm, k + 1, out);
            perm.swap(k, i);
        }
    }
    if n == 0 {
        return vec![vec![]];
    }
    rec(&mut perm, 0, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldl_core::parser::{parse_program, parse_query};

    fn optimize(text: &str, q: &str) -> Result<OptimizedQuery> {
        let program = parse_program(text).unwrap();
        let db = Database::from_program(&program);
        let opt = Optimizer::with_defaults(&program, &db);
        opt.optimize(&parse_query(q).unwrap())
    }

    fn optimize_cfg(text: &str, q: &str, cfg: OptConfig) -> Result<OptimizedQuery> {
        let program = parse_program(text).unwrap();
        let db = Database::from_program(&program);
        let opt = Optimizer::new(&program, &db, cfg);
        opt.optimize(&parse_query(q).unwrap())
    }

    const SG: &str = r#"
        up(1, 10). up(2, 10). up(3, 20).
        flat(10, 10). flat(20, 20).
        dn(10, 1). dn(10, 2). dn(20, 3).
        sg(X, Y) <- flat(X, Y).
        sg(X, Y) <- up(X, X1), sg(Y1, X1), dn(Y1, Y).
    "#;

    #[test]
    fn sg_bound_query_chooses_binding_propagation() {
        let o = optimize(SG, "sg(1, Y)?").unwrap();
        assert!(matches!(o.method, Method::Magic | Method::Counting));
        assert!(o.cost.is_finite());
    }

    /// The index-aware optimizer agrees with the default on the chosen
    /// method and produces identical answers; its base-access pricing
    /// reflects the catalog (a served bound set probes an ordered index
    /// with zero setup, everything stays finite).
    #[test]
    fn index_catalog_hook_prices_and_executes() {
        let program = parse_program(SG).unwrap();
        let db = Database::from_program(&program);
        let query = parse_query("sg(1, Y)?").unwrap();
        let plain = Optimizer::with_defaults(&program, &db)
            .optimize(&query)
            .unwrap();
        let opt = Optimizer::with_defaults(&program, &db).with_selected_indexes();
        let indexed = opt.optimize(&query).unwrap();
        assert!(indexed.cost.is_finite());
        assert_eq!(indexed.method, plain.method);
        let cfg = FixpointConfig::default();
        let a = plain.execute(&program, &db, &cfg).unwrap();
        let b = indexed.execute(&program, &db, &cfg).unwrap();
        assert_eq!(a.tuples, b.tuples);
        assert_eq!(a.metrics, b.metrics);
        // Catalog-served base accesses pay no per-plan setup: the dn
        // predicate is probed on column 0 in the recursive rule.
        let dn = opt.optimize_pred(Pred::new("dn", 2), Adornment::parse("bf").unwrap());
        assert_eq!(dn.cost.setup, 0.0);
    }

    /// A base atom followed by a bound comparison the catalog serves is
    /// priced as one `AccessPath::Range` probe — strictly cheaper than
    /// the catalog-less scan-then-filter pricing of the same order.
    #[test]
    fn range_demand_is_priced_as_a_range_probe() {
        let text = "big(X) <- n(X), X > 5, X < 90.";
        let program = parse_program(text).unwrap();
        let mut db = Database::new();
        db.set_stats(Pred::new("n", 1), Stats::uniform(10_000.0, 1, 10_000.0));
        let ad = Adornment::all_free(1);
        let plain = Optimizer::with_defaults(&program, &db);
        let (scan_cost, _) = plain.order_cost(&program.rules[0], ad, &[0, 1, 2]);
        let indexed = Optimizer::with_defaults(&program, &db).with_selected_indexes();
        let (range_cost, _) = indexed.order_cost(&program.rules[0], ad, &[0, 1, 2]);
        assert!(range_cost.is_finite());
        assert!(
            range_cost < scan_cost,
            "range probe {range_cost} must beat scan-then-filter {scan_cost}"
        );
    }

    /// The range-priced plan still executes to the same answers as the
    /// plain one — pricing never changes semantics.
    #[test]
    fn range_priced_plan_executes_identically() {
        let text = "n(4). n(9). n(1). n(7). n(2). n(8).\n\
                    big(X) <- n(X), X > 2, X <= 7.";
        let program = parse_program(text).unwrap();
        let db = Database::from_program(&program);
        let query = parse_query("big(A)?").unwrap();
        let plain = Optimizer::with_defaults(&program, &db)
            .optimize(&query)
            .unwrap();
        let indexed = Optimizer::with_defaults(&program, &db)
            .with_selected_indexes()
            .optimize(&query)
            .unwrap();
        assert!(indexed.cost.is_finite());
        let cfg = FixpointConfig::default();
        let a = plain.execute(&program, &db, &cfg).unwrap();
        let b = indexed.execute(&program, &db, &cfg).unwrap();
        assert_eq!(a.tuples, b.tuples);
    }

    #[test]
    fn sg_free_query_does_not_choose_counting() {
        let o = optimize(SG, "sg(X, Y)?").unwrap();
        assert!(
            matches!(o.method, Method::SemiNaive | Method::Magic),
            "free query must not pick counting, got {:?}",
            o.method
        );
    }

    #[test]
    fn counting_chosen_when_acyclic_assumed() {
        let cfg = OptConfig {
            assume_acyclic: true,
            ..OptConfig::default()
        };
        let o = optimize_cfg(SG, "sg(1, Y)?", cfg).unwrap();
        assert_eq!(o.method, Method::Counting);
    }

    #[test]
    fn free_query_avoids_counting_even_when_acyclic() {
        let cfg = OptConfig {
            assume_acyclic: true,
            ..OptConfig::default()
        };
        let o = optimize_cfg(SG, "sg(X, Y)?", cfg).unwrap();
        assert_eq!(
            o.method,
            Method::SemiNaive,
            "an all-free query has no binding to propagate"
        );
    }

    #[test]
    fn nonrecursive_rule_order_prefers_selective_first() {
        // `big` has 10_000 synthetic tuples, `small` has 10; with X bound
        // through the query, starting from `small` is cheaper.
        let text = r#"
            q(X, Z) <- big(X, Y), small(Y, Z).
        "#;
        let program = parse_program(text).unwrap();
        let mut db = Database::new();
        db.set_stats(Pred::new("big", 2), Stats::uniform(10_000.0, 2, 1000.0));
        db.set_stats(Pred::new("small", 2), Stats::uniform(10.0, 2, 10.0));
        let opt = Optimizer::with_defaults(&program, &db);
        let o = opt.optimize(&parse_query("q(X, Z)?").unwrap()).unwrap();
        match &o.plan.kind {
            PredPlanKind::Union(rules) => {
                assert_eq!(
                    rules[0].order,
                    vec![1, 0],
                    "small relation should be scanned first"
                );
            }
            other => panic!("expected union plan, got {other:?}"),
        }
    }

    #[test]
    fn query_forms_get_distinct_plans() {
        let text = r#"
            q(X, Z) <- a(X, Y), b(Y, Z).
        "#;
        let program = parse_program(text).unwrap();
        let mut db = Database::new();
        db.set_stats(Pred::new("a", 2), Stats::uniform(1000.0, 2, 100.0));
        db.set_stats(Pred::new("b", 2), Stats::uniform(1000.0, 2, 100.0));
        let opt = Optimizer::with_defaults(&program, &db);
        let bf = opt.optimize(&parse_query("q(1, Z)?").unwrap()).unwrap();
        let fb = opt.optimize(&parse_query("q(X, 1)?").unwrap()).unwrap();
        let get_order = |o: &OptimizedQuery| match &o.plan.kind {
            PredPlanKind::Union(rules) => rules[0].order.clone(),
            _ => panic!(),
        };
        assert_eq!(get_order(&bf), vec![0, 1], "bound X: start from a");
        assert_eq!(get_order(&fb), vec![1, 0], "bound Z: start from b");
        assert!(bf.cost.is_finite() && fb.cost.is_finite());
    }

    #[test]
    fn builtins_are_ordered_safely() {
        let o = optimize(
            "n(1). n(2). n(3).\nbig(Y, X) <- Y = X * 10, n(X).",
            "big(A, B)?",
        )
        .unwrap();
        match &o.plan.kind {
            PredPlanKind::Union(rules) => {
                assert_eq!(rules[0].order, vec![1, 0], "n(X) must precede Y = X * 10");
            }
            _ => panic!(),
        }
    }

    #[test]
    fn unsafe_query_reported() {
        // y never bound: the paper's §8.3 example.
        let r = optimize("p(X, Y, Z) <- X = 3, Z = X + Y.", "p(A, B, C)?");
        assert!(matches!(r, Err(LdlError::Unsafe(_))), "got {r:?}");
    }

    #[test]
    fn bound_form_of_unsafe_query_is_safe() {
        let r = optimize("p(X, Y, Z) <- X = 3, Z = X + Y.", "p(A, 7, C)?");
        assert!(r.is_ok());
    }

    #[test]
    fn arithmetic_recursion_unsafe_without_bound() {
        let r = optimize(
            "zero(0).\ncnt(X) <- zero(X).\ncnt(Y) <- cnt(X), Y = X + 1.",
            "cnt(N)?",
        );
        assert!(matches!(r, Err(LdlError::Unsafe(_))));
    }

    #[test]
    fn list_length_safe_only_when_bound() {
        let text = "len([], 0).\nlen([H | T], N) <- len(T, M), N = M + 1.";
        let free = optimize(text, "len(L, N)?");
        assert!(
            matches!(free, Err(LdlError::Unsafe(_))),
            "free form must be unsafe"
        );
        let bound = optimize(text, "len([1, 2, 3], N)?");
        let bound = bound.unwrap();
        assert!(matches!(bound.method, Method::Magic | Method::Counting));
    }

    #[test]
    fn memoization_counts_subtrees_once_per_binding() {
        // shared(X) is referenced twice with the same binding: one
        // optimization, one memo hit.
        let text = r#"
            top(X) <- shared(X), also(X).
            also(X) <- shared(X).
            shared(X) <- base(X).
        "#;
        let program = parse_program(text).unwrap();
        let db = Database::new();
        let opt = Optimizer::with_defaults(&program, &db);
        opt.optimize(&parse_query("top(Z)?").unwrap()).unwrap();
        let stats = opt.stats();
        assert!(stats.memo_hits >= 1, "expected memo hits, got {stats:?}");
    }

    #[test]
    fn memo_ablation_does_more_work() {
        let text = r#"
            top(X) <- s(X), t(X), u(X).
            s(X) <- shared(X).
            t(X) <- shared(X).
            u(X) <- shared(X).
            shared(X) <- base(X), other(X).
        "#;
        let program = parse_program(text).unwrap();
        let db = Database::new();
        let with = Optimizer::with_defaults(&program, &db);
        with.optimize(&parse_query("top(Z)?").unwrap()).unwrap();
        let without = Optimizer::new(
            &program,
            &db,
            OptConfig {
                memo_enabled: false,
                ..OptConfig::default()
            },
        );
        without.optimize(&parse_query("top(Z)?").unwrap()).unwrap();
        assert!(
            without.stats().subtree_optimizations > with.stats().subtree_optimizations,
            "without memo {:?} vs with {:?}",
            without.stats(),
            with.stats()
        );
    }

    #[test]
    fn executes_optimized_plan_correctly() {
        let program = parse_program(SG).unwrap();
        let db = Database::from_program(&program);
        let opt = Optimizer::with_defaults(&program, &db);
        let query = parse_query("sg(1, Y)?").unwrap();
        let o = opt.optimize(&query).unwrap();
        let ans = o
            .execute(&program, &db, &FixpointConfig::default())
            .unwrap();
        // Reference: plain semi-naive.
        let reference = ldl_eval::evaluate_query(
            &program,
            &db,
            &query,
            Method::SemiNaive,
            &FixpointConfig::default(),
        )
        .unwrap();
        assert_eq!(ans.tuples, reference.tuples);
    }

    #[test]
    fn strategies_agree_on_small_rules() {
        let text = r#"
            q(W) <- a(W, X), b(X, Y), c(Y, Z), d(Z, W).
        "#;
        let program = parse_program(text).unwrap();
        let mut db = Database::new();
        for (n, card) in [("a", 100.0), ("b", 10000.0), ("c", 10.0), ("d", 1000.0)] {
            db.set_stats(Pred::new(n, 2), Stats::uniform(card, 2, card / 10.0));
        }
        let query = parse_query("q(1)?").unwrap();
        let mut costs = Vec::new();
        for s in [Strategy::Exhaustive, Strategy::DynamicProgramming] {
            let opt = Optimizer::new(
                &program,
                &db,
                OptConfig {
                    strategy: s,
                    ..OptConfig::default()
                },
            );
            let o = opt.optimize(&query).unwrap();
            costs.push(o.cost);
        }
        assert!(
            (costs[0] - costs[1]).abs() <= 1e-6 * costs[0].max(1.0),
            "exhaustive {} vs dp {}",
            costs[0],
            costs[1]
        );
    }

    #[test]
    fn kbz_strategy_produces_sound_competitive_plans() {
        let text = r#"
            q(W) <- a(W, X), b(X, Y), c(Y, Z), d(Z, V).
        "#;
        let program = parse_program(text).unwrap();
        let mut db = Database::new();
        for (n, card) in [("a", 100.0), ("b", 50_000.0), ("c", 20.0), ("d", 3_000.0)] {
            db.set_stats(Pred::new(n, 2), Stats::uniform(card, 2, card / 5.0));
        }
        let query = parse_query("q(1)?").unwrap();
        let dp = Optimizer::new(
            &program,
            &db,
            OptConfig {
                strategy: Strategy::DynamicProgramming,
                ..OptConfig::default()
            },
        )
        .optimize(&query)
        .unwrap();
        let kbz = Optimizer::new(
            &program,
            &db,
            OptConfig {
                strategy: Strategy::Kbz,
                ..OptConfig::default()
            },
        )
        .optimize(&query)
        .unwrap();
        assert!(kbz.cost.is_finite());
        // The chain query is acyclic: KBZ's pick should be close to DP's
        // exact optimum under the same cost walk.
        assert!(
            kbz.cost <= dp.cost * 3.0,
            "kbz {} vs dp {} — too far from optimal on a chain",
            kbz.cost,
            dp.cost
        );
    }

    #[test]
    fn kbz_strategy_falls_back_on_builtins() {
        // Builtins make the ASI abstraction inapplicable: must still
        // produce a safe plan (via the DP fallback).
        let o = optimize_cfg(
            "n(1). n(2).\nbig(X, Y) <- Y = X * 10, n(X).",
            "big(A, B)?",
            OptConfig {
                strategy: Strategy::Kbz,
                ..OptConfig::default()
            },
        )
        .unwrap();
        assert!(o.cost.is_finite());
        match &o.plan.kind {
            PredPlanKind::Union(rules) => assert_eq!(rules[0].order, vec![1, 0]),
            _ => panic!(),
        }
    }

    #[test]
    fn annealing_strategy_returns_safe_finite_plan() {
        let text = r#"
            q(W) <- a(W, X), b(X, Y), Y > 0, c(Y, Z).
        "#;
        let program = parse_program(text).unwrap();
        let mut db = Database::new();
        for n in ["a", "b", "c"] {
            db.set_stats(Pred::new(n, 2), Stats::uniform(100.0, 2, 50.0));
        }
        let opt = Optimizer::new(
            &program,
            &db,
            OptConfig {
                strategy: Strategy::Annealing,
                ..OptConfig::default()
            },
        );
        let o = opt.optimize(&parse_query("q(1)?").unwrap()).unwrap();
        assert!(o.cost.is_finite());
    }

    #[test]
    fn clique_plan_reports_method_costs() {
        let o = optimize(SG, "sg(1, Y)?").unwrap();
        match &o.plan.kind {
            PredPlanKind::Clique { method_costs, .. } => {
                assert_eq!(method_costs.len(), Method::ALL.len());
                let naive = method_costs
                    .iter()
                    .find(|(m, _)| *m == Method::Naive)
                    .unwrap()
                    .1;
                let semi = method_costs
                    .iter()
                    .find(|(m, _)| *m == Method::SemiNaive)
                    .unwrap()
                    .1;
                let magic = method_costs
                    .iter()
                    .find(|(m, _)| *m == Method::Magic)
                    .unwrap()
                    .1;
                assert!(
                    naive > semi,
                    "naive {naive} must cost more than semi-naive {semi}"
                );
                assert!(
                    magic < semi,
                    "magic {magic} must beat semi-naive {semi} when bound"
                );
            }
            other => panic!("expected clique plan, got {other:?}"),
        }
    }

    #[test]
    fn counting_plan_falls_back_to_magic_on_cyclic_data() {
        // The optimizer is told to assume acyclic data and picks
        // counting — but the data has a cycle. Execution must detect the
        // divergence and fall back to magic, still returning the right
        // answers.
        let text = r#"
            e(1, 2). e(2, 3). e(3, 1).
            tc(X, Y) <- e(X, Y).
            tc(X, Y) <- e(X, Z), tc(Z, Y).
        "#;
        let program = parse_program(text).unwrap();
        let db = Database::from_program(&program);
        let opt = Optimizer::new(
            &program,
            &db,
            OptConfig {
                assume_acyclic: true,
                ..OptConfig::default()
            },
        );
        let query = parse_query("tc(1, Y)?").unwrap();
        let plan = opt.optimize(&query).unwrap();
        assert_eq!(plan.method, Method::Counting);
        let cfg = FixpointConfig::with_max_iterations(100);
        let ans = plan.execute(&program, &db, &cfg).unwrap();
        assert_eq!(ans.tuples.len(), 3); // 1->1, 1->2, 1->3
    }

    #[test]
    fn list_reverse_plans_and_executes() {
        // Regression: rev's recursive rule calls the DERIVED app/3, which
        // must not count as a termination "driver" for naive/semi-naive,
        // and makes the clique ineligible for counting (two derived
        // literals). The optimizer must land on magic and execute.
        let text = r#"
            app([], L, L).
            app([H | T], L, [H | R]) <- app(T, L, R).
            rev([], []).
            rev([H | T], R) <- rev(T, RT), app(RT, [H], R).
        "#;
        let program = parse_program(text).unwrap();
        let db = Database::from_program(&program);
        let opt = Optimizer::new(
            &program,
            &db,
            OptConfig {
                assume_acyclic: true,
                ..OptConfig::default()
            },
        );
        let query = parse_query("rev([1, 2, 3], R)?").unwrap();
        let plan = opt.optimize(&query).unwrap();
        assert_eq!(plan.method, Method::Magic, "got {:?}", plan.method);
        let ans = plan
            .execute(&program, &db, &FixpointConfig::with_max_iterations(500))
            .unwrap();
        assert_eq!(ans.tuples.len(), 1);
        assert_eq!(ans.tuples.rows()[0].get(1).to_string(), "[3, 2, 1]");
    }

    #[test]
    fn mutual_recursion_optimizes() {
        let text = r#"
            zero(0).
            succ(0, 1). succ(1, 2). succ(2, 3).
            even(X) <- zero(X).
            even(X) <- succ(Y, X), odd(Y).
            odd(X) <- succ(Y, X), even(Y).
        "#;
        let o = optimize(text, "even(2)?").unwrap();
        assert!(o.cost.is_finite());
        let program = parse_program(text).unwrap();
        let db = Database::from_program(&program);
        let ans = o
            .execute(&program, &db, &FixpointConfig::default())
            .unwrap();
        assert_eq!(ans.tuples.len(), 1);
    }
}
