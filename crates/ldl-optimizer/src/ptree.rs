//! Processing trees (§4, Figure 4-1).
//!
//! The execution model: a rooted graph whose AND nodes are joins, OR
//! nodes unions, and leaves base relations. Recursive cliques are
//! *contracted* into CC nodes — a single node standing for the atomic
//! fixpoint computation of the whole clique — which makes the graph a
//! DAG; replicating shared children turns it into a tree. Square nodes
//! (here `[mat]`) materialize their result; triangle nodes (`<pipe>`)
//! produce tuples lazily using the binding implied by the pipeline.
//!
//! The optimizer's decisions annotate the tree: body orders reorder AND
//! children, the chosen fixpoint method labels each CC node.

use crate::opt::{OptimizedQuery, PredPlanKind};
use ldl_core::depgraph::DependencyGraph;
use ldl_core::{Pred, Program};
use ldl_eval::Method;
use std::collections::BTreeSet;
use std::fmt;

/// What a node computes.
#[derive(Clone, Debug, PartialEq)]
pub enum TreeKind {
    /// Base relation scan.
    Leaf(Pred),
    /// Join of the children (one rule body). `rule_index` points into
    /// the program.
    And {
        /// Which rule this AND node implements.
        rule_index: usize,
        /// The head predicate.
        pred: Pred,
    },
    /// Union of the children (all rules of one derived predicate).
    Or(Pred),
    /// Contracted recursive clique.
    Cc {
        /// The mutually recursive predicates contracted together.
        preds: BTreeSet<Pred>,
        /// Fixpoint method label (None before optimization).
        method: Option<Method>,
    },
    /// Back-reference to a predicate already on the path (uncontracted
    /// recursion renders as this instead of looping forever).
    RecRef(Pred),
}

/// A processing tree node.
#[derive(Clone, Debug, PartialEq)]
pub struct ProcessingTree {
    /// Node semantics.
    pub kind: TreeKind,
    /// Materialized (square) or pipelined (triangle).
    pub materialized: bool,
    /// Children, in execution (left-to-right) order.
    pub children: Vec<ProcessingTree>,
}

impl ProcessingTree {
    /// Builds the *uncontracted* processing tree for `pred`: OR over its
    /// rules, AND over each body, recursion rendered as [`TreeKind::RecRef`].
    pub fn build(program: &Program, pred: Pred) -> ProcessingTree {
        let mut path = Vec::new();
        build_or(program, pred, &mut path)
    }

    /// Builds the *contracted* tree: every recursive clique collapses
    /// into one CC node whose children are the clique's outside inputs
    /// (Figure 4-1c).
    pub fn build_contracted(program: &Program, pred: Pred) -> ProcessingTree {
        let graph = DependencyGraph::build(program);
        build_contracted_inner(program, &graph, pred)
    }

    /// Annotates a contracted tree with an optimized plan's decisions:
    /// AND children reordered by the chosen body order, CC nodes labeled
    /// with the chosen method, join children pipelined.
    pub fn from_plan(program: &Program, optimized: &OptimizedQuery) -> ProcessingTree {
        let mut tree = Self::build_contracted(program, optimized.query.pred());
        annotate(&mut tree, program, optimized);
        tree
    }

    /// Number of nodes.
    pub fn size(&self) -> usize {
        1 + self
            .children
            .iter()
            .map(ProcessingTree::size)
            .sum::<usize>()
    }

    /// Depth of the tree (a single node has depth 1).
    pub fn depth(&self) -> usize {
        1 + self
            .children
            .iter()
            .map(ProcessingTree::depth)
            .max()
            .unwrap_or(0)
    }

    /// All CC nodes.
    pub fn cc_nodes(&self) -> Vec<&ProcessingTree> {
        let mut out = Vec::new();
        self.walk(&mut |n| {
            if matches!(n.kind, TreeKind::Cc { .. }) {
                out.push(n);
            }
        });
        out
    }

    fn walk<'a>(&'a self, f: &mut impl FnMut(&'a ProcessingTree)) {
        f(self);
        for c in &self.children {
            c.walk(f);
        }
    }

    fn fmt_indent(&self, f: &mut fmt::Formatter<'_>, indent: usize) -> fmt::Result {
        for _ in 0..indent {
            write!(f, "  ")?;
        }
        let mode = if self.materialized { "[mat]" } else { "<pipe>" };
        match &self.kind {
            TreeKind::Leaf(p) => writeln!(f, "{mode} scan {p}")?,
            TreeKind::And { rule_index, pred } => {
                writeln!(f, "{mode} AND/join (rule {rule_index} of {pred})")?
            }
            TreeKind::Or(p) => writeln!(f, "{mode} OR/union {p}")?,
            TreeKind::Cc { preds, method } => {
                let names: Vec<String> = preds.iter().map(|p| p.to_string()).collect();
                match method {
                    Some(m) => writeln!(f, "{mode} CC {{{}}} via {}", names.join(", "), m.name())?,
                    None => writeln!(f, "{mode} CC {{{}}}", names.join(", "))?,
                }
            }
            TreeKind::RecRef(p) => writeln!(f, "{mode} rec-ref {p}")?,
        }
        for c in &self.children {
            c.fmt_indent(f, indent + 1)?;
        }
        Ok(())
    }
}

impl fmt::Display for ProcessingTree {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.fmt_indent(f, 0)
    }
}

fn build_or(program: &Program, pred: Pred, path: &mut Vec<Pred>) -> ProcessingTree {
    if path.contains(&pred) {
        return ProcessingTree {
            kind: TreeKind::RecRef(pred),
            materialized: true,
            children: vec![],
        };
    }
    let rules = program.rules_for(pred);
    if rules.is_empty() {
        return ProcessingTree {
            kind: TreeKind::Leaf(pred),
            materialized: true,
            children: vec![],
        };
    }
    path.push(pred);
    let children = rules
        .into_iter()
        .map(|(ri, rule)| {
            let lits = rule
                .body_atoms()
                .map(|a| build_or(program, a.pred, path))
                .collect();
            ProcessingTree {
                kind: TreeKind::And {
                    rule_index: ri,
                    pred,
                },
                materialized: true,
                children: lits,
            }
        })
        .collect();
    path.pop();
    ProcessingTree {
        kind: TreeKind::Or(pred),
        materialized: true,
        children,
    }
}

fn build_contracted_inner(
    program: &Program,
    graph: &DependencyGraph,
    pred: Pred,
) -> ProcessingTree {
    if let Some(clique) = graph.clique_of(pred) {
        // Children: predicates used by clique rules from outside the clique.
        let mut outside: BTreeSet<Pred> = BTreeSet::new();
        for &ri in &clique.all_rules() {
            for a in program.rules[ri].body_atoms() {
                if !clique.preds.contains(&a.pred) {
                    outside.insert(a.pred);
                }
            }
        }
        let children = outside
            .into_iter()
            .map(|p| build_contracted_inner(program, graph, p))
            .collect();
        return ProcessingTree {
            kind: TreeKind::Cc {
                preds: clique.preds.clone(),
                method: None,
            },
            materialized: true,
            children,
        };
    }
    let rules = program.rules_for(pred);
    if rules.is_empty() {
        return ProcessingTree {
            kind: TreeKind::Leaf(pred),
            materialized: true,
            children: vec![],
        };
    }
    let children = rules
        .into_iter()
        .map(|(ri, rule)| {
            let lits = rule
                .body_atoms()
                .map(|a| build_contracted_inner(program, graph, a.pred))
                .collect();
            ProcessingTree {
                kind: TreeKind::And {
                    rule_index: ri,
                    pred,
                },
                materialized: true,
                children: lits,
            }
        })
        .collect();
    ProcessingTree {
        kind: TreeKind::Or(pred),
        materialized: true,
        children,
    }
}

fn annotate(tree: &mut ProcessingTree, program: &Program, optimized: &OptimizedQuery) {
    match &mut tree.kind {
        TreeKind::Cc { preds, method } => {
            // Label every CC node on the path of the query's plan. Only
            // the query predicate's clique has a recorded method; others
            // default to semi-naive.
            let m = match &optimized.plan.kind {
                PredPlanKind::Clique { method: qm, .. }
                    if preds.contains(&optimized.query.pred()) =>
                {
                    *qm
                }
                _ => Method::SemiNaive,
            };
            *method = Some(m);
        }
        TreeKind::And { rule_index, .. } => {
            // Reorder join children by the chosen order, where recorded.
            let order = optimized
                .orders
                .iter()
                .find(|((ri, _), _)| ri == rule_index)
                .map(|(_, o)| o.clone())
                .or_else(|| optimized.clique_orders.get(rule_index).cloned());
            if let Some(order) = order {
                // `order` indexes *all* body literals; the tree only has
                // atom children. Map atom positions through it.
                let rule = &program.rules[*rule_index];
                let atom_positions: Vec<usize> = rule
                    .body
                    .iter()
                    .enumerate()
                    .filter(|(_, l)| l.as_atom().map(|a| !a.negated).unwrap_or(false))
                    .map(|(i, _)| i)
                    .collect();
                if atom_positions.len() == tree.children.len() {
                    let mut reordered = Vec::with_capacity(tree.children.len());
                    for &li in &order {
                        if let Some(pos) = atom_positions.iter().position(|&p| p == li) {
                            reordered.push(tree.children[pos].clone());
                        }
                    }
                    if reordered.len() == tree.children.len() {
                        tree.children = reordered;
                    }
                }
            }
            // Pipeline everything after the first child (sideways
            // information flows left to right).
            for (i, c) in tree.children.iter_mut().enumerate() {
                if i > 0 && matches!(c.kind, TreeKind::Leaf(_)) {
                    c.materialized = false;
                }
            }
        }
        _ => {}
    }
    for c in &mut tree.children {
        annotate(c, program, optimized);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::opt::Optimizer;
    use ldl_core::parser::{parse_program, parse_query};
    use ldl_storage::Database;

    const SG: &str = r#"
        up(1, 10). flat(10, 10). dn(10, 1).
        sg(X, Y) <- flat(X, Y).
        sg(X, Y) <- up(X, X1), sg(Y1, X1), dn(Y1, Y).
    "#;

    #[test]
    fn uncontracted_tree_has_recref() {
        let p = parse_program(SG).unwrap();
        let t = ProcessingTree::build(&p, Pred::new("sg", 2));
        let rendered = t.to_string();
        assert!(rendered.contains("rec-ref sg/2"), "{rendered}");
        assert!(rendered.contains("OR/union sg/2"));
        assert!(rendered.contains("scan up/2"));
    }

    #[test]
    fn contracted_tree_has_cc_node() {
        let p = parse_program(SG).unwrap();
        let t = ProcessingTree::build_contracted(&p, Pred::new("sg", 2));
        match &t.kind {
            TreeKind::Cc { preds, method } => {
                assert!(preds.contains(&Pred::new("sg", 2)));
                assert!(method.is_none());
            }
            other => panic!("expected CC root, got {other:?}"),
        }
        // Children: the three outside base relations.
        assert_eq!(t.children.len(), 3);
        assert!(t.cc_nodes().len() == 1);
    }

    #[test]
    fn contraction_makes_tree_acyclic_and_smaller() {
        let p = parse_program(SG).unwrap();
        let un = ProcessingTree::build(&p, Pred::new("sg", 2));
        let con = ProcessingTree::build_contracted(&p, Pred::new("sg", 2));
        assert!(con.depth() < un.depth());
    }

    #[test]
    fn layered_cliques_contract_separately() {
        let text = r#"
            tc(X, Y) <- e(X, Y).
            tc(X, Y) <- tc(X, Z), e(Z, Y).
            above(X, Y) <- tc(X, Y), tag(Y).
        "#;
        let p = parse_program(text).unwrap();
        let t = ProcessingTree::build_contracted(&p, Pred::new("above", 2));
        assert!(matches!(t.kind, TreeKind::Or(_)));
        assert_eq!(t.cc_nodes().len(), 1);
    }

    #[test]
    fn plan_annotation_labels_method_and_reorders() {
        let p = parse_program(SG).unwrap();
        let db = Database::from_program(&p);
        let opt = Optimizer::with_defaults(&p, &db);
        let o = opt.optimize(&parse_query("sg(1, Y)?").unwrap()).unwrap();
        let t = ProcessingTree::from_plan(&p, &o);
        let cc = t.cc_nodes();
        assert_eq!(cc.len(), 1);
        match &cc[0].kind {
            TreeKind::Cc { method, .. } => assert!(method.is_some()),
            _ => unreachable!(),
        }
        let rendered = t.to_string();
        assert!(rendered.contains("via"), "{rendered}");
    }

    #[test]
    fn nonrecursive_plan_pipelines_inner_scans() {
        let text = "q(X, Z) <- a(X, Y), b(Y, Z).\na(1,2). b(2,3).";
        let p = parse_program(text).unwrap();
        let db = Database::from_program(&p);
        let opt = Optimizer::with_defaults(&p, &db);
        let o = opt.optimize(&parse_query("q(1, Z)?").unwrap()).unwrap();
        let t = ProcessingTree::from_plan(&p, &o);
        let rendered = t.to_string();
        assert!(rendered.contains("<pipe> scan"), "{rendered}");
    }

    #[test]
    fn size_and_depth() {
        let text = "q(X) <- a(X), b(X).";
        let p = parse_program(text).unwrap();
        let t = ProcessingTree::build(&p, Pred::new("q", 1));
        assert_eq!(t.size(), 4); // or + and + 2 leaves
        assert_eq!(t.depth(), 3);
    }
}
