//! Abstract conjunctive queries: the join-graph model.
//!
//! §7.1 of the paper discusses the generic search strategies on
//! conjunctive queries, and the [Vil 87] experiments compare them on
//! randomly generated queries over random database states. A
//! [`JoinGraph`] is that abstraction: `n` relations with cardinalities
//! and pairwise join selectivities. The cost of a (left-deep, pipelined)
//! join order is the classic sum of intermediate result sizes — a cost
//! function that satisfies the ASI property on tree queries, as required
//! by the KBZ algorithm [KBZ 86].

use std::collections::HashMap;

/// A conjunctive query: relations + pairwise join selectivities.
#[derive(Clone, Debug)]
pub struct JoinGraph {
    cards: Vec<f64>,
    /// Selectivity for unordered pair (i, j), stored with i < j.
    sel: HashMap<(usize, usize), f64>,
}

impl JoinGraph {
    /// Graph with the given relation cardinalities and no join edges
    /// (every join defaults to a cross product, selectivity 1).
    pub fn new(cards: Vec<f64>) -> JoinGraph {
        assert!(!cards.is_empty());
        assert!(cards.iter().all(|&c| c.is_finite() && c >= 0.0));
        JoinGraph {
            cards,
            sel: HashMap::new(),
        }
    }

    /// Number of relations.
    pub fn n(&self) -> usize {
        self.cards.len()
    }

    /// Cardinality of relation `i`.
    pub fn card(&self, i: usize) -> f64 {
        self.cards[i]
    }

    /// Sets the join selectivity between `i` and `j` (symmetric).
    pub fn set_selectivity(&mut self, i: usize, j: usize, s: f64) {
        assert!(i != j && i < self.n() && j < self.n());
        assert!((0.0..=1.0).contains(&s), "selectivity must be in [0,1]");
        self.sel.insert((i.min(j), i.max(j)), s);
    }

    /// Join selectivity between `i` and `j` (1.0 when unrelated).
    pub fn selectivity(&self, i: usize, j: usize) -> f64 {
        if i == j {
            return 1.0;
        }
        *self.sel.get(&(i.min(j), i.max(j))).unwrap_or(&1.0)
    }

    /// All explicit edges `(i, j, selectivity)` with `i < j`.
    pub fn edges(&self) -> Vec<(usize, usize, f64)> {
        let mut v: Vec<(usize, usize, f64)> =
            self.sel.iter().map(|(&(i, j), &s)| (i, j, s)).collect();
        v.sort_by_key(|e| (e.0, e.1));
        v
    }

    /// Cost of executing the join order `perm`: the sum of intermediate
    /// result cardinalities after each join (C_out), plus the initial
    /// scan of the first relation. Also returns the final cardinality.
    pub fn sequence_cost_card(&self, perm: &[usize]) -> (f64, f64) {
        assert_eq!(perm.len(), self.n(), "perm must order every relation");
        let mut card = self.cards[perm[0]];
        let mut cost = card;
        for k in 1..perm.len() {
            let r = perm[k];
            let mut t = self.cards[r];
            for &p in &perm[..k] {
                t *= self.selectivity(p, r);
            }
            card *= t;
            cost += card;
        }
        (cost, card)
    }

    /// Cost only (see [`JoinGraph::sequence_cost_card`]).
    pub fn sequence_cost(&self, perm: &[usize]) -> f64 {
        self.sequence_cost_card(perm).0
    }

    /// Final result cardinality — identical for every complete order.
    pub fn result_cardinality(&self) -> f64 {
        let perm: Vec<usize> = (0..self.n()).collect();
        self.sequence_cost_card(&perm).1
    }

    /// Is the join graph (edges with selectivity < 1) connected and
    /// acyclic, i.e. a tree? KBZ applies directly exactly then.
    pub fn is_tree(&self) -> bool {
        let n = self.n();
        if n == 1 {
            return true;
        }
        let edges = self.edges();
        if edges.len() != n - 1 {
            return false;
        }
        // Union-find connectivity.
        let mut parent: Vec<usize> = (0..n).collect();
        fn find(parent: &mut Vec<usize>, x: usize) -> usize {
            if parent[x] != x {
                let r = find(parent, parent[x]);
                parent[x] = r;
            }
            parent[x]
        }
        for (i, j, _) in edges {
            let (ri, rj) = (find(&mut parent, i), find(&mut parent, j));
            if ri == rj {
                return false; // cycle
            }
            parent[ri] = rj;
        }
        let root = find(&mut parent, 0);
        (1..n).all(|i| find(&mut parent, i) == root)
    }

    /// A spanning tree of the join graph choosing the most selective
    /// (smallest-selectivity) edges first — the standard heuristic for
    /// applying KBZ to cyclic queries. Returns edges `(i, j, s)`.
    /// Relations not connected by any edge are attached with selectivity
    /// 1 (cross product).
    pub fn spanning_tree(&self) -> Vec<(usize, usize, f64)> {
        let n = self.n();
        let mut edges = self.edges();
        edges.sort_by(|a, b| a.2.partial_cmp(&b.2).expect("finite selectivity"));
        let mut parent: Vec<usize> = (0..n).collect();
        fn find(parent: &mut Vec<usize>, x: usize) -> usize {
            if parent[x] != x {
                let r = find(parent, parent[x]);
                parent[x] = r;
            }
            parent[x]
        }
        let mut tree = Vec::with_capacity(n.saturating_sub(1));
        for (i, j, s) in edges {
            let (ri, rj) = (find(&mut parent, i), find(&mut parent, j));
            if ri != rj {
                parent[ri] = rj;
                tree.push((i, j, s));
            }
        }
        // Attach any disconnected components with cross-product edges.
        for i in 1..n {
            let (r0, ri) = (find(&mut parent, 0), find(&mut parent, i));
            if r0 != ri {
                parent[ri] = r0;
                tree.push((0, i, 1.0));
            }
        }
        tree
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain3() -> JoinGraph {
        // R0 -0.1- R1 -0.01- R2, cards 100, 1000, 10.
        let mut g = JoinGraph::new(vec![100.0, 1000.0, 10.0]);
        g.set_selectivity(0, 1, 0.1);
        g.set_selectivity(1, 2, 0.01);
        g
    }

    #[test]
    fn sequence_cost_depends_on_order() {
        let g = chain3();
        let a = g.sequence_cost(&[0, 1, 2]);
        let b = g.sequence_cost(&[1, 0, 2]);
        let c = g.sequence_cost(&[2, 1, 0]);
        assert_ne!(a, c);
        assert!(a > 0.0 && b > 0.0 && c > 0.0);
    }

    #[test]
    fn final_cardinality_is_order_independent() {
        let g = chain3();
        let (_, c1) = g.sequence_cost_card(&[0, 1, 2]);
        let (_, c2) = g.sequence_cost_card(&[2, 0, 1]);
        let (_, c3) = g.sequence_cost_card(&[1, 2, 0]);
        assert!((c1 - c2).abs() < 1e-6);
        assert!((c1 - c3).abs() < 1e-6);
        // 100 * 1000 * 10 * 0.1 * 0.01 = 1000.
        assert!((c1 - 1000.0).abs() < 1e-6);
    }

    #[test]
    fn cross_product_costs_more() {
        // Disconnected relation joins as cross product.
        let mut g = JoinGraph::new(vec![10.0, 10.0, 1000.0]);
        g.set_selectivity(0, 1, 0.1);
        let with_cross_first = g.sequence_cost(&[2, 0, 1]);
        let with_cross_last = g.sequence_cost(&[0, 1, 2]);
        assert!(with_cross_last < with_cross_first);
    }

    #[test]
    fn tree_detection() {
        assert!(chain3().is_tree());
        let mut cyc = chain3();
        cyc.set_selectivity(0, 2, 0.5);
        assert!(!cyc.is_tree());
        let disconnected = JoinGraph::new(vec![1.0, 2.0, 3.0]);
        assert!(!disconnected.is_tree());
        assert!(JoinGraph::new(vec![5.0]).is_tree());
    }

    #[test]
    fn spanning_tree_prefers_selective_edges() {
        let mut g = JoinGraph::new(vec![10.0, 10.0, 10.0]);
        g.set_selectivity(0, 1, 0.5);
        g.set_selectivity(1, 2, 0.1);
        g.set_selectivity(0, 2, 0.9);
        let t = g.spanning_tree();
        assert_eq!(t.len(), 2);
        assert!(t.iter().any(|&(i, j, _)| (i, j) == (1, 2)));
        assert!(t.iter().any(|&(i, j, _)| (i, j) == (0, 1)));
    }

    #[test]
    fn spanning_tree_connects_components() {
        let g = JoinGraph::new(vec![1.0, 2.0, 3.0]);
        let t = g.spanning_tree();
        assert_eq!(t.len(), 2);
        assert!(t.iter().all(|&(_, _, s)| s == 1.0));
    }

    #[test]
    #[should_panic(expected = "selectivity must be in")]
    fn invalid_selectivity_rejected() {
        let mut g = JoinGraph::new(vec![1.0, 1.0]);
        g.set_selectivity(0, 1, 1.5);
    }
}
