//! # ldl-optimizer — the paper's contribution
//!
//! A compile-time, cost-based, safety-aware optimizer for LDL queries,
//! reproducing *"Optimization in a Logic Based Language for Knowledge and
//! Data Intensive Applications"* (Krishnamurthy & Zaniolo, EDBT 1988):
//!
//! * the optimization problem is a minimization over an execution space
//!   of processing trees ([`ptree`]) under a cost model ([`cost`]);
//! * three generic search strategies over join orders —
//!   exhaustive enumeration / Selinger dynamic programming
//!   ([`search::exhaustive`]), the KBZ quadratic algorithm for ASI cost
//!   functions ([`search::kbz`]), and simulated annealing with the
//!   swap-two neighbor relation ([`search::anneal`]);
//! * NR-OPT (Fig. 7-1): AND/OR-tree optimization memoized per binding
//!   pattern, and OPT (Fig. 7-2): recursive cliques optimized by
//!   enumerating c-permutations, adorning, and costing every applicable
//!   recursive method ([`opt`]);
//! * safety as an extreme case of cost: non-effectively-computable
//!   orderings and cliques without a well-founded order get infinite
//!   cost and are pruned; if nothing finite survives, the query is
//!   reported unsafe ([`safety`]).

pub mod co_opt;
pub mod cost;
pub mod cse;
pub mod estimates;
pub mod joingraph;
pub mod opt;
pub mod ptree;
pub use ldl_core::safety;
pub mod search;

pub use co_opt::{co_optimize, collect_plan_signatures, CoOptStats, CoOptimized};
pub use cost::{AccessPath, CostModel, CostParams, PlanCost};
pub use estimates::EstimateCatalog;
pub use joingraph::JoinGraph;
pub use opt::{CliqueSearch, OptConfig, OptStats, OptimizedQuery, Optimizer};
pub use ptree::ProcessingTree;
pub use search::Strategy;
