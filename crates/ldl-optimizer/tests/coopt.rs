//! Monotonicity, termination, and pruning guarantees of the
//! co-optimization fixpoint and the memoized enumerator.
//!
//! * the accepted-cost trajectory of [`co_optimize`] never increases —
//!   it is strictly decreasing by the acceptance rule;
//! * the fixpoint terminates within its proved bound
//!   ([`MAX_CO_ITERATIONS`]), and the clique co-adornment fixpoint
//!   prices at most `1 + CLIQUE_FIXPOINT_MAX_ROUNDS` c-permutations;
//! * on chains of ≥ 8 literals the memoized enumerator explores
//!   *strictly* fewer prefixes than the `n!` complete orders exhaustive
//!   enumeration costs, while still landing on the same minimum;
//! * an n = 14 chain — far beyond exhaustive reach — optimizes to
//!   completion with a finite cost (the E3-successor acceptance bar).

use ldl_core::parser::{parse_program, parse_query};
use ldl_optimizer::co_opt::MAX_CO_ITERATIONS;
use ldl_optimizer::opt::CLIQUE_FIXPOINT_MAX_ROUNDS;
use ldl_optimizer::{co_optimize, OptConfig, Optimizer, Strategy};
use ldl_storage::Database;

/// `q(X0, Xn) <- a1(X0, X1), …, an(Xn-1, Xn).` plus a few facts per
/// base predicate so every relation has statistics.
fn chain(n: usize) -> (ldl_core::Program, Database) {
    let mut text = String::new();
    for i in 1..=n {
        for j in 0..4 + (i % 3) {
            text.push_str(&format!("a{i}({j}, {}).\n", j + 1));
        }
    }
    let body: Vec<String> = (1..=n).map(|i| format!("a{i}(X{}, X{i})", i - 1)).collect();
    text.push_str(&format!("q(X0, X{n}) <- {}.\n", body.join(", ")));
    let program = parse_program(&text).unwrap();
    let db = Database::from_program(&program);
    (program, db)
}

fn factorial(n: usize) -> usize {
    (1..=n).product()
}

#[test]
fn memo_strictly_prunes_exhaustive_on_eight_literals() {
    let (program, db) = chain(8);
    let query = parse_query("q(A, B)?").unwrap();
    let memo_cfg = OptConfig {
        strategy: Strategy::Memo,
        ..OptConfig::default()
    };
    let exh_cfg = OptConfig {
        strategy: Strategy::Exhaustive,
        ..OptConfig::default()
    };
    let memo = Optimizer::new(&program, &db, memo_cfg)
        .optimize(&query)
        .unwrap();
    let exh = Optimizer::new(&program, &db, exh_cfg)
        .optimize(&query)
        .unwrap();
    // Exhaustive walks every complete order; the memo walks strictly
    // fewer prefix extensions and prunes dominated states on the way.
    assert!(exh.stats.orders_probed >= factorial(8));
    assert!(
        memo.stats.explored_plans < factorial(8),
        "memo explored {} prefixes, expected < 8! = {}",
        memo.stats.explored_plans,
        factorial(8)
    );
    assert!(
        memo.stats.explored_plans < exh.stats.orders_probed,
        "memo ({}) did not prune vs exhaustive ({})",
        memo.stats.explored_plans,
        exh.stats.orders_probed
    );
    assert!(
        memo.stats.enum_memo_hits > 0,
        "dominance pruning never fired"
    );
    // And pruning lost nothing: same minimum.
    assert!((memo.cost - exh.cost).abs() <= 1e-9 * exh.cost.abs().max(1.0));
}

#[test]
fn fourteen_literal_chain_optimizes_to_completion() {
    let (program, db) = chain(14);
    let query = parse_query("q(A, B)?").unwrap();
    let co = co_optimize(&program, &db, &OptConfig::default(), &query, None).unwrap();
    assert!(
        co.plan.cost.is_finite(),
        "n = 14 chain should co-optimize to a finite plan"
    );
    assert!(co.stats.iterations <= MAX_CO_ITERATIONS);
    assert!(
        co.plan.stats.explored_plans < factorial(10),
        "explored {} prefixes — enumeration is not remotely factorial",
        co.plan.stats.explored_plans
    );
}

#[test]
fn accepted_cost_trajectory_never_increases() {
    for n in [2, 4, 8] {
        let (program, db) = chain(n);
        let query = parse_query("q(A, B)?").unwrap();
        let co = co_optimize(&program, &db, &OptConfig::default(), &query, None).unwrap();
        assert!(!co.stats.cost_trajectory.is_empty());
        for w in co.stats.cost_trajectory.windows(2) {
            assert!(
                w[1] < w[0],
                "accepted costs must strictly decrease, got {:?} at n = {n}",
                co.stats.cost_trajectory
            );
        }
        assert!(co.stats.iterations <= MAX_CO_ITERATIONS);
    }
}

#[test]
fn clique_fixpoint_prices_within_its_round_bound() {
    let text = "tc(X, Y) <- e(X, Y).\ntc(X, Y) <- e(X, Z), tc(Z, Y).\n\
                e(1, 2). e(2, 3). e(3, 4). e(4, 5).";
    let program = parse_program(text).unwrap();
    let db = Database::from_program(&program);
    let query = parse_query("tc(1, B)?").unwrap();
    let plan = Optimizer::new(&program, &db, OptConfig::default())
        .optimize(&query)
        .unwrap();
    assert!(plan.cost.is_finite());
    // The fixpoint prices the identity c-permutation once, then at most
    // one proposal per round.
    assert!(
        plan.stats.cpermutations_probed <= 1 + CLIQUE_FIXPOINT_MAX_ROUNDS,
        "{} c-permutations priced, bound is {}",
        plan.stats.cpermutations_probed,
        1 + CLIQUE_FIXPOINT_MAX_ROUNDS
    );
}
