//! Magic-path IVM gap regression under a co-optimized catalog.
//!
//! The magic query path carries no state between calls — it re-runs its
//! rewriting against the engine's current database — so after
//! [`Engine::apply_delta`] a co-optimized magic plan (with the
//! co-optimized index catalog installed) must agree bit-for-bit with
//! both the maintained engine's answers and a from-scratch evaluation
//! of the updated EDB. This extends the `ldl-eval` IVM gap test to the
//! co-optimization layer: a stale answer here would mean the catalog
//! override leaked state across the commit, or the re-collected
//! signatures priced a plan the executor cannot reproduce.

use ldl_core::parser::{parse_program, parse_query};
use ldl_core::{Pred, Term};
use ldl_eval::{EdbDelta, Engine, FixpointConfig, Method};
use ldl_optimizer::{co_optimize, OptConfig};
use ldl_storage::{Database, Tuple};

const RULES: &str = "tc(X, Y) <- e(X, Y).\n\
                     tc(X, Y) <- e(X, Z), tc(Z, Y).\n\
                     e(1, 2). e(2, 3).";

#[test]
fn co_optimized_magic_query_after_delta_agrees_with_scratch() {
    let program = parse_program(RULES).unwrap();
    let db = Database::from_program(&program);
    let cfg = FixpointConfig::serial();
    let mut engine = Engine::evaluate(&program, &db, &cfg).unwrap();
    let query = parse_query("tc(1, B)?").unwrap();

    let ask_co = |engine: &Engine| {
        let co = co_optimize(
            engine.program(),
            engine.database(),
            &OptConfig::default(),
            &query,
            None,
        )
        .unwrap();
        assert_eq!(
            co.plan.method,
            Method::Magic,
            "the bound tc goal should pick the magic method"
        );
        let mut t = co
            .execute(engine.program(), engine.database(), &cfg)
            .unwrap()
            .tuples;
        t.canonicalize();
        t
    };

    let before = ask_co(&engine);
    assert_eq!(before, engine.answers(&query));
    assert_eq!(before.len(), 2);

    // Commit a batch extending the chain and retracting the middle
    // edge: the maintained closure both grows and shrinks.
    let e = Pred::new("e", 2);
    let mut delta = EdbDelta::new();
    delta
        .insert(e, Tuple(vec![Term::int(3), Term::int(4)]))
        .insert(e, Tuple(vec![Term::int(1), Term::int(3)]))
        .retract(e, Tuple(vec![Term::int(2), Term::int(3)]));
    engine.apply_delta(&delta).unwrap();

    // The re-co-optimized magic query reflects the commit...
    let after = ask_co(&engine);
    assert_eq!(after, engine.answers(&query));
    assert_eq!(after.len(), 3); // 1→2 stays; 1→3 and 1→3→4 replace 1→2→3.

    // ...and agrees bit-for-bit with a from-scratch evaluation of the
    // same EDB, on the goal and on the whole maintained closure.
    let scratch = Engine::evaluate(engine.program(), engine.database(), &cfg).unwrap();
    assert_eq!(after, scratch.answers(&query));
    let tc = Pred::new("tc", 2);
    assert_eq!(
        engine.relation(tc).map(|r| r.rows()),
        scratch.relation(tc).map(|r| r.rows()),
        "maintained closure diverged from scratch after the delta"
    );
}
