//! Brute-force oracle for the memoized enumerator (`Strategy::Memo`).
//!
//! For seeded random rules of at most 6 body literals — base atoms,
//! comparisons, EC equalities, and negation, with and without an index
//! catalog (the catalog enables the range-fold paths the fold-tail memo
//! key exists for) — the memoized enumerator's chosen cost must exactly
//! equal the minimum of [`Optimizer::order_cost`] over *all* `n!`
//! permutations under the same cost model and catalog. Runs on
//! `ldl_support::prop`; replay failures with the `LDL_PROP_SEED` value
//! printed in the panic message.

use ldl_core::parser::parse_program;
use ldl_core::Adornment;
use ldl_index::IndexCatalog;
use ldl_optimizer::{OptConfig, Optimizer, Strategy};
use ldl_storage::Database;
use ldl_support::prop::{bools, check, pairs, quads, usizes, vecs, Config};

/// One body literal: `(kind, i, j, c)` over variables `X0..X3`.
///
/// * kind 0 — base atom `e(Xi, Xj)`
/// * kind 1 — base atom `n(Xi)`
/// * kind 2 — comparison `Xi > c`
/// * kind 3 — EC equality `Xi = Xj + c` (j forced ≠ i)
/// * kind 4 — negation `~e(Xi, Xj)`
type Lit = (usize, usize, usize, usize);

fn literal_text(&(kind, i, j, c): &Lit) -> String {
    let j = if kind == 3 && j == i { (i + 1) % 4 } else { j };
    match kind {
        0 => format!("e(X{i}, X{j})"),
        1 => format!("n(X{i})"),
        2 => format!("X{i} > {c}"),
        3 => format!("X{i} = X{j} + {c}"),
        _ => format!("~e(X{i}, X{j})"),
    }
}

/// Builds the program text: EDB facts plus one rule `q(X0, X1) <- body`
/// with at most 6 literals and at least one positive base atom.
fn program_text(lits: &[Lit], edges: &[(usize, usize)], ns: &[usize]) -> String {
    let mut lits: Vec<Lit> = lits.iter().take(6).copied().collect();
    if !lits.iter().any(|l| l.0 <= 1) {
        lits[0] = (0, 0, 1, 0);
    }
    let body: Vec<String> = lits.iter().map(literal_text).collect();
    let mut text = String::new();
    for (a, b) in edges {
        text.push_str(&format!("e({a}, {b}).\n"));
    }
    for n in ns {
        text.push_str(&format!("n({n}).\n"));
    }
    text.push_str(&format!("q(X0, X1) <- {}.\n", body.join(", ")));
    text
}

/// All permutations of `0..n` (n ≤ 6 → at most 720).
fn permutations(n: usize) -> Vec<Vec<usize>> {
    fn go(prefix: &mut Vec<usize>, rest: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
        if rest.is_empty() {
            out.push(prefix.clone());
            return;
        }
        for k in 0..rest.len() {
            let v = rest.remove(k);
            prefix.push(v);
            go(prefix, rest, out);
            prefix.pop();
            rest.insert(k, v);
        }
    }
    let mut out = Vec::new();
    go(&mut Vec::new(), &mut (0..n).collect(), &mut out);
    out
}

#[test]
fn memo_cost_equals_exhaustive_minimum() {
    let lit = quads(usizes(0..5), usizes(0..4), usizes(0..4), usizes(0..5));
    let gen = quads(
        vecs(lit, 1..7),
        vecs(pairs(usizes(0..6), usizes(0..6)), 1..10),
        vecs(usizes(0..6), 1..6),
        bools(),
    );
    check(
        "memo_cost_equals_exhaustive_minimum",
        &Config::with_cases(48),
        &gen,
        |(lits, edges, ns, with_catalog)| {
            let text = program_text(lits, edges, ns);
            let program = parse_program(&text).unwrap();
            let db = Database::from_program(&program);
            let ri = program
                .rules
                .iter()
                .position(|r| r.head.pred.name.as_str() == "q")
                .unwrap();
            let rule = &program.rules[ri];
            let cfg = OptConfig {
                strategy: Strategy::Memo,
                ..OptConfig::default()
            };
            let mut opt = Optimizer::new(&program, &db, cfg);
            if *with_catalog {
                opt = opt.with_index_catalog(IndexCatalog::build(&program));
            }
            for head_ad in [
                Adornment::all_free(2),
                Adornment::parse("bf").unwrap(),
                Adornment::all_bound(2),
            ] {
                let plan = opt.optimize_rule(ri, rule, head_ad);
                let oracle = permutations(rule.body.len())
                    .iter()
                    .map(|order| opt.order_cost(rule, head_ad, order).0)
                    .fold(f64::INFINITY, f64::min);
                if oracle.is_infinite() {
                    assert!(
                        plan.cost.is_infinite(),
                        "memo found a finite plan the oracle says cannot exist \
                         under {head_ad}:\n{text}"
                    );
                } else {
                    assert!(
                        (plan.cost - oracle).abs() <= 1e-9 * oracle.abs().max(1.0),
                        "memo cost {} != exhaustive minimum {} under {head_ad} \
                         (catalog: {with_catalog}), order {:?}:\n{text}",
                        plan.cost,
                        oracle,
                        plan.order
                    );
                }
            }
        },
    );
}
