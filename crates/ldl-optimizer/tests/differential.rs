//! Differential soundness of the co-optimized index catalog override.
//!
//! The catalog [`co_optimize`] hands the executor via
//! [`FixpointConfig::with_index_catalog`] is a pure performance knob:
//! for generated programs mixing joins, recursion, negation,
//! comparisons, and arithmetic, answers *and* [`Metrics`] with the
//! co-optimized catalog installed are bit-identical (canonical order)
//! to runs without it, across {naive, semi-naive, magic} × {1, 4}
//! threads × {Selected, ForceScan} access paths. Runs on
//! `ldl_support::prop`; replay failures with the `LDL_PROP_SEED` value
//! printed in the panic message.

use ldl_core::parser::{parse_program, parse_query};
use ldl_eval::naive::AnalysisPolicy;
use ldl_eval::{evaluate_query, AccessPaths, FixpointConfig, Method};
use ldl_optimizer::{co_optimize, OptConfig};
use ldl_storage::Database;
use ldl_support::prop::{check, pairs, triples, usizes, vecs, Config};
use std::sync::Arc;

/// Rule blocks that each put different demands on the index catalog,
/// with all-free and (where interesting) bound query forms.
struct Block {
    rules: &'static str,
    queries: &'static [&'static str],
}

const BLOCKS: &[Block] = &[
    // Plain join: probes e on column 0 or 1 depending on the order.
    Block {
        rules: "j0(X, Z) <- e(X, Y), e(Y, Z).\n",
        queries: &["j0(A, B)?", "j0(1, B)?"],
    },
    // Join against a unary filter — the big/small flip candidate.
    Block {
        rules: "j1(X) <- e(X, Y), n(Y).\n",
        queries: &["j1(A)?"],
    },
    // Range demand: the comparison folds into an indexed scan.
    Block {
        rules: "j2(X, Y) <- e(X, Y), Y > 2.\n",
        queries: &["j2(A, B)?", "j2(1, B)?"],
    },
    // Recursion: magic-renamed predicates get their own demands.
    Block {
        rules: "tc(X, Y) <- e(X, Y).\ntc(X, Y) <- e(X, Z), tc(Z, Y).\n",
        queries: &["tc(A, B)?", "tc(1, B)?"],
    },
    // Stratified negation over a join.
    Block {
        rules: "j4(X) <- n(X), ~e(X, X).\n",
        queries: &["j4(A)?"],
    },
    // Arithmetic head computed from a join.
    Block {
        rules: "j5(Z) <- e(X, Y), Z = X + Y.\n",
        queries: &["j5(A)?"],
    },
];

fn program_text(picks: &[usize], ns: &[usize], edges: &[(usize, usize)]) -> (String, Vec<usize>) {
    let mut chosen: Vec<usize> = picks.to_vec();
    chosen.sort_unstable();
    chosen.dedup();
    let mut text = String::new();
    for n in ns {
        text.push_str(&format!("n({n}).\n"));
    }
    for (a, b) in edges {
        text.push_str(&format!("e({a}, {b}).\n"));
    }
    for &i in &chosen {
        text.push_str(BLOCKS[i].rules);
    }
    (text, chosen)
}

#[test]
fn co_optimized_catalog_preserves_answers_and_metrics() {
    let gen = triples(
        vecs(usizes(0..BLOCKS.len()), 1..4),
        vecs(usizes(0..6), 1..5),
        vecs(pairs(usizes(0..6), usizes(0..6)), 1..7),
    );
    check(
        "co_optimized_catalog_preserves_answers_and_metrics",
        &Config::with_cases(16),
        &gen,
        |(picks, ns, edges)| {
            let (text, chosen) = program_text(picks, ns, edges);
            let program = parse_program(&text).unwrap();
            let db = Database::from_program(&program);
            for &i in &chosen {
                for qtext in BLOCKS[i].queries {
                    let q = parse_query(qtext).unwrap();
                    let co = co_optimize(&program, &db, &OptConfig::default(), &q, None)
                        .unwrap_or_else(|e| panic!("co_optimize failed for {qtext}: {e}\n{text}"));
                    let catalog = Arc::new(co.catalog.clone());
                    for method in [Method::Naive, Method::SemiNaive, Method::Magic] {
                        for threads in [1, 4] {
                            for access in [AccessPaths::Selected, AccessPaths::ForceScan] {
                                let base = FixpointConfig::default()
                                    .with_analysis(AnalysisPolicy::Off)
                                    .with_threads(threads)
                                    .with_access_paths(access);
                                let with = base.clone().with_index_catalog(catalog.clone());
                                let mut plain = evaluate_query(&program, &db, &q, method, &base)
                                    .unwrap_or_else(|e| {
                                        panic!("baseline failed for {qtext}: {e}\n{text}")
                                    });
                                let mut co_run = evaluate_query(&program, &db, &q, method, &with)
                                    .unwrap_or_else(|e| {
                                        panic!("override failed for {qtext}: {e}\n{text}")
                                    });
                                plain.tuples.canonicalize();
                                co_run.tuples.canonicalize();
                                assert_eq!(
                                    co_run.tuples,
                                    plain.tuples,
                                    "catalog override changed answers: {} / {threads} \
                                     thread(s) / {access:?} / {qtext}\nprogram:\n{text}",
                                    method.name()
                                );
                                assert_eq!(
                                    co_run.metrics,
                                    plain.metrics,
                                    "catalog override changed metrics: {} / {threads} \
                                     thread(s) / {access:?} / {qtext}\nprogram:\n{text}",
                                    method.name()
                                );
                            }
                        }
                    }
                }
            }
        },
    );
}
