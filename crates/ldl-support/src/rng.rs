//! Deterministic PRNG: SplitMix64 with the sampling surface the
//! optimizer and harnesses need.
//!
//! SplitMix64 is a 64-bit finalizer-based generator: one add and three
//! xor-shift-multiply rounds per output, passes BigCrush, and — unlike
//! `rand`'s `StdRng` — is guaranteed stable across versions because it
//! lives in this repository. Every randomized component of the
//! workspace (annealing, workload generation, property tests) threads a
//! seed into [`SplitMix64::seed_from_u64`], so runs replay exactly.

use std::ops::{Range, RangeInclusive};

/// A seedable, deterministic 64-bit PRNG (SplitMix64).
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a 64-bit seed. Identical seeds yield
    /// identical streams, forever.
    pub fn seed_from_u64(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// The next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Unbiased uniform draw from `[0, span)` via rejection sampling.
    fn below(&mut self, span: u64) -> u64 {
        debug_assert!(span > 0);
        let limit = u64::MAX - u64::MAX % span;
        loop {
            let v = self.next_u64();
            if v < limit {
                return v % span;
            }
        }
    }

    /// A uniform value of `T` (`bool`, `f64`, `u64`).
    pub fn gen<T: FromRng>(&mut self) -> T {
        T::from_rng(self)
    }

    /// Uniform draw from a half-open or inclusive range. Panics on an
    /// empty range.
    pub fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Fisher–Yates shuffle in place.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }

    /// A statistically independent generator split off this one (for
    /// handing substreams to parallel workers).
    pub fn fork(&mut self) -> SplitMix64 {
        SplitMix64::seed_from_u64(self.next_u64())
    }
}

/// Types [`SplitMix64::gen`] can produce.
pub trait FromRng {
    /// Draws one uniform value.
    fn from_rng(rng: &mut SplitMix64) -> Self;
}

impl FromRng for u64 {
    fn from_rng(rng: &mut SplitMix64) -> u64 {
        rng.next_u64()
    }
}

impl FromRng for f64 {
    fn from_rng(rng: &mut SplitMix64) -> f64 {
        rng.next_f64()
    }
}

impl FromRng for bool {
    fn from_rng(rng: &mut SplitMix64) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges [`SplitMix64::gen_range`] can sample from.
pub trait SampleRange {
    /// The element type of the range.
    type Output;
    /// Draws one uniform value from the range.
    fn sample(self, rng: &mut SplitMix64) -> Self::Output;
}

macro_rules! int_sample_range {
    ($t:ty) => {
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample(self, rng: &mut SplitMix64) -> $t {
                assert!(self.start < self.end, "gen_range: empty range {self:?}");
                let span = self.end.wrapping_sub(self.start) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample(self, rng: &mut SplitMix64) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range {lo}..={hi}");
                let span = hi.wrapping_sub(lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(rng.below(span + 1) as $t)
            }
        }
    };
}

int_sample_range!(usize);
int_sample_range!(u64);
int_sample_range!(u32);
int_sample_range!(i64);
int_sample_range!(i32);

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample(self, rng: &mut SplitMix64) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range {self:?}");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

/// Slice extensions mirroring `rand::seq::SliceRandom`, so call sites
/// read `xs.shuffle(&mut rng)`.
pub trait SliceRandom {
    /// The element type.
    type Item;
    /// Fisher–Yates shuffle in place.
    fn shuffle(&mut self, rng: &mut SplitMix64);
    /// A uniformly chosen element, or `None` when empty.
    fn choose(&self, rng: &mut SplitMix64) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle(&mut self, rng: &mut SplitMix64) {
        rng.shuffle(self);
    }

    fn choose(&self, rng: &mut SplitMix64) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.gen_range(0..self.len())])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = SplitMix64::seed_from_u64(42);
        let mut b = SplitMix64::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn known_answer_vector() {
        // First outputs of SplitMix64 with seed 1234567, from the
        // reference implementation (prng.di.unimi.it/splitmix64.c).
        let mut r = SplitMix64::seed_from_u64(1234567);
        assert_eq!(r.next_u64(), 6457827717110365317);
        assert_eq!(r.next_u64(), 3203168211198807973);
        assert_eq!(r.next_u64(), 9817491932198370423);
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::seed_from_u64(1);
        let mut b = SplitMix64::seed_from_u64(2);
        assert_ne!(
            (0..4).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..4).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut r = SplitMix64::seed_from_u64(7);
        for _ in 0..2000 {
            let v = r.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let v = r.gen_range(-5i64..5);
            assert!((-5..5).contains(&v));
            let v = r.gen_range(0usize..=4);
            assert!(v <= 4);
            let f = r.gen_range(-2.5f64..1.5);
            assert!((-2.5..1.5).contains(&f));
        }
    }

    #[test]
    fn gen_range_covers_all_values() {
        let mut r = SplitMix64::seed_from_u64(11);
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[r.gen_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit: {seen:?}");
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut r = SplitMix64::seed_from_u64(9);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let f = r.next_f64();
            assert!((0.0..1.0).contains(&f));
            sum += f;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut r = SplitMix64::seed_from_u64(13);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits {hits}");
        assert!(!(0..100).any(|_| r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.1)));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = SplitMix64::seed_from_u64(17);
        let mut xs: Vec<usize> = (0..50).collect();
        xs.shuffle(&mut r);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(xs, (0..50).collect::<Vec<_>>(), "50 elements left in place");
    }

    #[test]
    fn choose_returns_member() {
        let mut r = SplitMix64::seed_from_u64(19);
        let xs = [10, 20, 30];
        for _ in 0..20 {
            assert!(xs.contains(xs.choose(&mut r).unwrap()));
        }
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut r).is_none());
    }

    #[test]
    fn fork_produces_independent_stream() {
        let mut a = SplitMix64::seed_from_u64(23);
        let mut b = a.fork();
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        SplitMix64::seed_from_u64(0).gen_range(5usize..5);
    }
}
