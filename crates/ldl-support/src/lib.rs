//! # ldl-support — hermetic test & bench infrastructure
//!
//! The LDL workspace builds with **zero external dependencies**; this
//! crate supplies the three pieces that used to come from crates.io:
//!
//! * [`rng`] — a deterministic [SplitMix64] PRNG with the small sampling
//!   surface the optimizer needs (`gen_range`, `gen_bool`, `shuffle`,
//!   seedable), replacing `rand`;
//! * [`prop`] — a minimal property-testing harness (composable
//!   generators, configurable case count, greedy shrinking, failure-seed
//!   reporting), replacing `proptest`;
//! * [`mod@bench`] — a lightweight bench harness (warmup + N timed
//!   iterations, median/p95, JSON output to `BENCH_*.json`), replacing
//!   `criterion`;
//! * [`par`] — a scoped worker-pool helper (`std::thread::scope` +
//!   atomic work-stealing, results returned in job order), replacing
//!   `rayon`-style fan-out for the parallel fixpoint evaluators.
//!
//! Everything is seeded and reproducible: the randomized search
//! (simulated annealing, §7 of the paper) and the plan-space property
//! suites replay bit-for-bit across runs and machines.
//!
//! [SplitMix64]: https://prng.di.unimi.it/splitmix64.c

pub mod bench;
pub mod par;
pub mod prop;
pub mod rng;

pub use rng::{SliceRandom, SplitMix64};
