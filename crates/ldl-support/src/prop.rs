//! Minimal property-testing harness: composable generators, a
//! configurable case count, greedy shrinking, and failure-seed
//! reporting.
//!
//! A property is an ordinary closure that panics (via `assert!` and
//! friends) on a counterexample. [`check`] drives it over `cases`
//! generated inputs; on failure it greedily shrinks the input to a
//! local minimum and panics with the seed needed to replay the exact
//! run:
//!
//! ```
//! use ldl_support::prop::{check, vecs, i64s, Config};
//!
//! let gen = vecs(i64s(-100..100), 0..20);
//! check("sum-is-commutative", &Config::with_cases(64), &gen, |xs| {
//!     let rev: i64 = xs.iter().rev().sum();
//!     assert_eq!(xs.iter().sum::<i64>(), rev);
//! });
//! ```
//!
//! Environment overrides (for CI and for replaying failures):
//! * `LDL_PROP_CASES` — overrides every `Config::cases`;
//! * `LDL_PROP_SEED` — overrides every `Config::seed` (the failure
//!   message prints the value to use).

use crate::rng::SplitMix64;
use std::fmt::Debug;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::rc::Rc;

/// Harness configuration for one [`check`] call.
#[derive(Clone, Debug)]
pub struct Config {
    /// Number of generated cases.
    pub cases: u32,
    /// Base seed; case `i` runs on a stream derived from `seed` and `i`.
    pub seed: u64,
    /// Cap on shrink-candidate evaluations after a failure.
    pub max_shrink_steps: u32,
}

impl Default for Config {
    fn default() -> Config {
        Config {
            cases: 64,
            seed: 0x01D1_5EED_5EED_5EED,
            max_shrink_steps: 2048,
        }
    }
}

impl Config {
    /// Default config with the given case count.
    pub fn with_cases(cases: u32) -> Config {
        Config {
            cases,
            ..Config::default()
        }
    }

    /// Same config with a different base seed.
    pub fn seeded(mut self, seed: u64) -> Config {
        self.seed = seed;
        self
    }
}

/// A composable generator: produces values from a [`SplitMix64`] stream
/// and proposes smaller candidates when shrinking a counterexample.
pub struct Gen<T> {
    gen: Rc<dyn Fn(&mut SplitMix64) -> T>,
    shrink: Shrinker<T>,
}

/// Shrink function: proposes strictly "smaller" candidates for a
/// failing value, nearest-first.
type Shrinker<T> = Rc<dyn Fn(&T) -> Vec<T>>;

impl<T> Clone for Gen<T> {
    fn clone(&self) -> Gen<T> {
        Gen {
            gen: self.gen.clone(),
            shrink: self.shrink.clone(),
        }
    }
}

impl<T: 'static> Gen<T> {
    /// Generator from a sampling function, with no shrinking.
    pub fn new(f: impl Fn(&mut SplitMix64) -> T + 'static) -> Gen<T> {
        Gen {
            gen: Rc::new(f),
            shrink: Rc::new(|_| Vec::new()),
        }
    }

    /// Attaches a shrinker: given a failing value, propose strictly
    /// "smaller" candidates to try (nearest-first).
    pub fn with_shrink(self, s: impl Fn(&T) -> Vec<T> + 'static) -> Gen<T> {
        Gen {
            gen: self.gen,
            shrink: Rc::new(s),
        }
    }

    /// Samples one value.
    pub fn generate(&self, rng: &mut SplitMix64) -> T {
        (self.gen)(rng)
    }

    /// Shrink candidates for a failing value.
    pub fn shrink(&self, v: &T) -> Vec<T> {
        (self.shrink)(v)
    }

    /// Maps the generated value. Shrinking does not transport through
    /// an arbitrary function; attach one with [`Gen::with_shrink`] if
    /// the mapped domain has a useful ordering.
    pub fn map<U: 'static>(self, f: impl Fn(T) -> U + 'static) -> Gen<U> {
        let g = self.gen;
        Gen::new(move |rng| f(g(rng)))
    }
}

/// Generator that always yields a clone of `value`.
pub fn constant<T: Clone + 'static>(value: T) -> Gen<T> {
    Gen::new(move |_| value.clone())
}

/// Uniform `i64` in `[lo, hi)`, shrinking toward the in-range value
/// closest to zero.
pub fn i64s(range: std::ops::Range<i64>) -> Gen<i64> {
    let (lo, hi) = (range.start, range.end);
    Gen::new(move |rng| rng.gen_range(lo..hi)).with_shrink(move |&v| {
        let target = 0.clamp(lo, hi - 1);
        let mut out = vec![target, v - (v - target) / 2, v - (v - target).signum()];
        out.dedup();
        out.retain(|c| (lo..hi).contains(c) && *c != v);
        out
    })
}

/// Uniform `usize` in `[lo, hi)`, shrinking toward `lo`.
pub fn usizes(range: std::ops::Range<usize>) -> Gen<usize> {
    let (lo, hi) = (range.start, range.end);
    Gen::new(move |rng| rng.gen_range(lo..hi)).with_shrink(move |&v| {
        let mut out = Vec::new();
        if v != lo {
            out.push(lo);
            out.push(lo + (v - lo) / 2);
            out.push(v - 1);
        }
        out.dedup();
        out.retain(|c| (lo..hi).contains(c) && *c != v);
        out
    })
}

/// Uniform `u64` in `[lo, hi)`, shrinking toward `lo`.
pub fn u64s(range: std::ops::Range<u64>) -> Gen<u64> {
    let (lo, hi) = (range.start, range.end);
    Gen::new(move |rng| rng.gen_range(lo..hi)).with_shrink(move |&v| {
        let mut out = Vec::new();
        if v != lo {
            out.push(lo);
            out.push(lo + (v - lo) / 2);
            out.push(v - 1);
        }
        out.dedup();
        out.retain(|c| (lo..hi).contains(c) && *c != v);
        out
    })
}

/// Uniform `f64` in `[lo, hi)` (no shrinking — float counterexamples
/// rarely simplify usefully).
pub fn f64s(range: std::ops::Range<f64>) -> Gen<f64> {
    let (lo, hi) = (range.start, range.end);
    Gen::new(move |rng| rng.gen_range(lo..hi))
}

/// Uniform `bool`, shrinking `true` to `false`.
pub fn bools() -> Gen<bool> {
    Gen::new(|rng| rng.gen::<bool>()).with_shrink(|&v| if v { vec![false] } else { Vec::new() })
}

/// Vector of `elem` with length drawn from `len` — shrinks by dropping
/// the back half, dropping single elements, and shrinking elements.
pub fn vecs<T: Clone + 'static>(elem: Gen<T>, len: std::ops::Range<usize>) -> Gen<Vec<T>> {
    let (lo, hi) = (len.start, len.end);
    let gen_elem = elem.clone();
    Gen::new(move |rng| {
        let n = rng.gen_range(lo..hi);
        (0..n).map(|_| gen_elem.generate(rng)).collect()
    })
    .with_shrink(move |v: &Vec<T>| {
        let mut out: Vec<Vec<T>> = Vec::new();
        let n = v.len();
        // Structural shrinks first: shorter vectors fail faster.
        if n > lo {
            out.push(v[..lo].to_vec());
            if n / 2 > lo {
                out.push(v[..n / 2].to_vec());
            }
            for i in 0..n {
                let mut c = v.clone();
                c.remove(i);
                out.push(c);
            }
        }
        // Then element-wise shrinks, one position at a time.
        for i in 0..n {
            for cand in elem.shrink(&v[i]) {
                let mut c = v.clone();
                c[i] = cand;
                out.push(c);
            }
        }
        out
    })
}

/// Pair of independent generators; shrinks componentwise.
pub fn pairs<A: Clone + 'static, B: Clone + 'static>(a: Gen<A>, b: Gen<B>) -> Gen<(A, B)> {
    let (ga, gb) = (a.clone(), b.clone());
    Gen::new(move |rng| (ga.generate(rng), gb.generate(rng))).with_shrink(move |(x, y)| {
        let mut out = Vec::new();
        for c in a.shrink(x) {
            out.push((c, y.clone()));
        }
        for c in b.shrink(y) {
            out.push((x.clone(), c));
        }
        out
    })
}

/// Triple of independent generators; shrinks componentwise.
pub fn triples<A: Clone + 'static, B: Clone + 'static, C: Clone + 'static>(
    a: Gen<A>,
    b: Gen<B>,
    c: Gen<C>,
) -> Gen<(A, B, C)> {
    pairs(a, pairs(b, c)).map(|(x, (y, z))| (x, y, z))
}

/// Quadruple of independent generators; shrinks componentwise.
pub fn quads<A: Clone + 'static, B: Clone + 'static, C: Clone + 'static, D: Clone + 'static>(
    a: Gen<A>,
    b: Gen<B>,
    c: Gen<C>,
    d: Gen<D>,
) -> Gen<(A, B, C, D)> {
    pairs(pairs(a, b), pairs(c, d)).map(|((x, y), (z, w))| (x, y, z, w))
}

/// Picks one of the given generators uniformly per case.
pub fn one_of<T: 'static>(gens: Vec<Gen<T>>) -> Gen<T> {
    assert!(!gens.is_empty(), "one_of: no generators");
    Gen::new(move |rng| gens[rng.gen_range(0..gens.len())].generate(rng))
}

/// Lowercase identifier `[a-z][a-z0-9_]{0,extra}` — the shape LDL
/// symbols and functors take.
pub fn idents(extra: usize) -> Gen<String> {
    Gen::new(move |rng| {
        let mut s = String::new();
        s.push((b'a' + rng.gen_range(0u32..26) as u8) as char);
        let tail = rng.gen_range(0..=extra);
        for _ in 0..tail {
            let c = match rng.gen_range(0u32..37) {
                d @ 0..=25 => (b'a' + d as u8) as char,
                d @ 26..=35 => (b'0' + (d - 26) as u8) as char,
                _ => '_',
            };
            s.push(c);
        }
        s
    })
    .with_shrink(|s: &String| {
        if s.len() > 1 {
            vec![s[..1].to_string()]
        } else {
            Vec::new()
        }
    })
}

/// Runs `prop` over `cfg.cases` generated inputs. On a failure the
/// input is greedily shrunk and the harness panics with the base seed,
/// the per-case seed, and the minimal counterexample, so the exact run
/// replays with `LDL_PROP_SEED=<seed> cargo test <name>`.
pub fn check<T: Debug + 'static>(name: &str, cfg: &Config, gen: &Gen<T>, prop: impl Fn(&T)) {
    let cases = match std::env::var("LDL_PROP_CASES") {
        Ok(v) => v.parse().unwrap_or(cfg.cases),
        Err(_) => cfg.cases,
    };
    let seed = match std::env::var("LDL_PROP_SEED") {
        Ok(v) => parse_seed(&v).unwrap_or(cfg.seed),
        Err(_) => cfg.seed,
    };
    for case in 0..cases {
        let case_seed = seed ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut rng = SplitMix64::seed_from_u64(case_seed);
        let value = gen.generate(&mut rng);
        if let Some(msg) = failure_of(&prop, &value) {
            let (min, min_msg, steps) =
                shrink_to_minimal(gen, &prop, value, msg, cfg.max_shrink_steps);
            panic!(
                "[{name}] property falsified on case {case} of {cases} \
                 (base seed {seed:#x}, case seed {case_seed:#x}); replay with \
                 LDL_PROP_SEED={seed:#x}\n\
                 minimal counterexample (after {steps} shrink steps): {min:#?}\n\
                 failure: {min_msg}"
            );
        }
    }
}

fn parse_seed(s: &str) -> Option<u64> {
    let s = s.trim();
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

/// Runs the property on one value, capturing a panic as the failure
/// message.
fn failure_of<T>(prop: &impl Fn(&T), value: &T) -> Option<String> {
    match catch_unwind(AssertUnwindSafe(|| prop(value))) {
        Ok(()) => None,
        Err(e) => Some(panic_message(&e)),
    }
}

fn panic_message(e: &Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = e.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = e.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Greedy shrinking: repeatedly move to the first shrink candidate that
/// still fails, until no candidate fails or the step budget runs out.
fn shrink_to_minimal<T: Debug + 'static>(
    gen: &Gen<T>,
    prop: &impl Fn(&T),
    mut current: T,
    mut message: String,
    max_steps: u32,
) -> (T, String, u32) {
    let mut steps = 0u32;
    'outer: while steps < max_steps {
        for candidate in gen.shrink(&current) {
            steps += 1;
            if steps >= max_steps {
                break 'outer;
            }
            if let Some(msg) = failure_of(prop, &candidate) {
                current = candidate;
                message = msg;
                continue 'outer;
            }
        }
        break; // local minimum: no candidate fails
    }
    (current, message, steps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;

    #[test]
    fn passing_property_runs_all_cases() {
        let count = Cell::new(0u32);
        check("tautology", &Config::with_cases(50), &i64s(-10..10), |_| {
            count.set(count.get() + 1);
        });
        assert_eq!(count.get(), 50);
    }

    #[test]
    fn failing_property_panics_with_seed() {
        let r = catch_unwind(AssertUnwindSafe(|| {
            check(
                "always-false",
                &Config::with_cases(10),
                &i64s(0..100),
                |_| {
                    panic!("nope");
                },
            );
        }));
        let msg = panic_message(&r.unwrap_err());
        assert!(msg.contains("LDL_PROP_SEED="), "no replay seed in: {msg}");
        assert!(msg.contains("always-false"), "no test name in: {msg}");
    }

    #[test]
    fn shrinking_finds_boundary() {
        // Fails for v >= 57: greedy shrink must land exactly on 57.
        let r = catch_unwind(AssertUnwindSafe(|| {
            check("ge-57", &Config::with_cases(200), &i64s(0..1000), |&v| {
                assert!(v < 57);
            });
        }));
        let msg = panic_message(&r.unwrap_err());
        assert!(msg.contains("counterexample"), "msg: {msg}");
        assert!(msg.contains("57"), "did not shrink to 57: {msg}");
    }

    #[test]
    fn vec_shrinking_minimizes_length() {
        // Fails when the vec contains any negative number; the minimal
        // counterexample is a single element.
        let r = catch_unwind(AssertUnwindSafe(|| {
            check(
                "no-negatives",
                &Config::with_cases(100),
                &vecs(i64s(-50..50), 0..20),
                |xs| assert!(xs.iter().all(|&x| x >= 0)),
            );
        }));
        let msg = panic_message(&r.unwrap_err());
        // The minimal vec renders as a single-element debug list.
        assert!(msg.contains("counterexample"), "msg: {msg}");
        assert!(
            msg.contains("[\n    -1,\n]") || msg.contains("[-1]"),
            "did not shrink to [-1]: {msg}"
        );
    }

    #[test]
    fn fixed_seed_reproduces_values() {
        let collect = |seed: u64| {
            let mut out = Vec::new();
            let gen = vecs(i64s(0..1000), 0..8);
            let mut rng = SplitMix64::seed_from_u64(seed);
            for _ in 0..10 {
                out.push(gen.generate(&mut rng));
            }
            out
        };
        assert_eq!(collect(99), collect(99));
        assert_ne!(collect(99), collect(100));
    }

    #[test]
    fn pairs_shrink_componentwise() {
        let g = pairs(i64s(0..100), i64s(0..100));
        let shrunk = g.shrink(&(10, 20));
        assert!(shrunk.iter().any(|&(a, b)| a < 10 && b == 20));
        assert!(shrunk.iter().any(|&(a, b)| a == 10 && b < 20));
    }

    #[test]
    fn one_of_samples_every_branch() {
        let g = one_of(vec![constant(1), constant(2), constant(3)]);
        let mut rng = SplitMix64::seed_from_u64(5);
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[(g.generate(&mut rng) - 1) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn idents_are_valid() {
        let g = idents(6);
        let mut rng = SplitMix64::seed_from_u64(3);
        for _ in 0..200 {
            let s = g.generate(&mut rng);
            let mut chars = s.chars();
            assert!(chars.next().unwrap().is_ascii_lowercase());
            assert!(chars.all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'));
            assert!(s.len() <= 7);
        }
    }
}
