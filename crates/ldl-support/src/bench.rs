//! Lightweight bench harness: warmup + N timed iterations per
//! benchmark, median/p95/min/mean reporting, and JSON output in the
//! repo's `BENCH_*.json` shape.
//!
//! Bench targets are plain `harness = false` binaries:
//!
//! ```no_run
//! use ldl_support::bench::Harness;
//!
//! fn main() {
//!     let mut h = Harness::new("search");
//!     h.set_iters(3, 15);
//!     h.bench("search", "dp/6", || 2 + 2);
//!     h.finish();
//! }
//! ```
//!
//! Environment overrides:
//! * `LDL_BENCH_ITERS` — measured iterations per benchmark (overrides
//!   every `set_iters`; use `LDL_BENCH_ITERS=1` for a smoke run);
//! * `LDL_BENCH_JSON_DIR` — directory for `BENCH_<name>.json` (unset:
//!   the current directory; `-` disables the file entirely).

use std::fmt::Write as _;
use std::time::Instant;

/// One benchmark's aggregated timings, in nanoseconds.
#[derive(Clone, Debug)]
pub struct Record {
    /// Logical group (mirrors criterion's `benchmark_group`).
    pub group: String,
    /// Benchmark label within the group.
    pub label: String,
    /// Measured iterations.
    pub iters: u32,
    /// Median of per-iteration wall times.
    pub median_ns: u128,
    /// 95th percentile (nearest-rank).
    pub p95_ns: u128,
    /// Fastest iteration.
    pub min_ns: u128,
    /// Arithmetic mean.
    pub mean_ns: u128,
}

/// A bench run: collects [`Record`]s and writes `BENCH_<name>.json`.
pub struct Harness {
    name: String,
    warmup_iters: u32,
    measure_iters: u32,
    env_iters: Option<u32>,
    records: Vec<Record>,
}

impl Harness {
    /// New harness; `name` keys the JSON file (`BENCH_<name>.json`).
    pub fn new(name: &str) -> Harness {
        let env_iters = std::env::var("LDL_BENCH_ITERS")
            .ok()
            .and_then(|v| v.parse().ok());
        println!("bench {name}");
        Harness {
            name: name.to_string(),
            warmup_iters: 3,
            measure_iters: 15,
            env_iters,
            records: Vec::new(),
        }
    }

    /// Sets warmup and measured iteration counts for subsequent
    /// [`Harness::bench`] calls (the `LDL_BENCH_ITERS` env var still
    /// wins for the measured count).
    pub fn set_iters(&mut self, warmup: u32, measure: u32) {
        self.warmup_iters = warmup;
        self.measure_iters = measure.max(1);
    }

    /// Times `f`: `warmup` untimed runs, then `measure` timed runs.
    /// The closure's result is passed through [`std::hint::black_box`]
    /// so the optimizer cannot delete the work.
    pub fn bench<T>(&mut self, group: &str, label: &str, mut f: impl FnMut() -> T) {
        let iters = self.env_iters.unwrap_or(self.measure_iters).max(1);
        for _ in 0..self.warmup_iters {
            std::hint::black_box(f());
        }
        let mut samples: Vec<u128> = Vec::with_capacity(iters as usize);
        for _ in 0..iters {
            let t0 = Instant::now();
            let out = f();
            let dt = t0.elapsed();
            std::hint::black_box(out);
            samples.push(dt.as_nanos());
        }
        samples.sort_unstable();
        let n = samples.len();
        let median_ns = if n % 2 == 1 {
            samples[n / 2]
        } else {
            (samples[n / 2 - 1] + samples[n / 2]) / 2
        };
        let p95_ns = samples[((n * 95).div_ceil(100)).saturating_sub(1).min(n - 1)];
        let min_ns = samples[0];
        let mean_ns = samples.iter().sum::<u128>() / n as u128;
        println!(
            "  {group}/{label}: median {}  p95 {}  min {}  ({iters} iters)",
            fmt_ns(median_ns),
            fmt_ns(p95_ns),
            fmt_ns(min_ns),
        );
        self.records.push(Record {
            group: group.to_string(),
            label: label.to_string(),
            iters,
            median_ns,
            p95_ns,
            min_ns,
            mean_ns,
        });
    }

    /// The records collected so far.
    pub fn records(&self) -> &[Record] {
        &self.records
    }

    /// The JSON document for this run.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "{{");
        let _ = writeln!(s, "  \"name\": \"{}\",", escape(&self.name));
        let _ = writeln!(s, "  \"records\": [");
        for (i, r) in self.records.iter().enumerate() {
            let comma = if i + 1 < self.records.len() { "," } else { "" };
            let _ = writeln!(
                s,
                "    {{\"group\": \"{}\", \"label\": \"{}\", \"iters\": {}, \
                 \"median_ns\": {}, \"p95_ns\": {}, \"min_ns\": {}, \"mean_ns\": {}}}{comma}",
                escape(&r.group),
                escape(&r.label),
                r.iters,
                r.median_ns,
                r.p95_ns,
                r.min_ns,
                r.mean_ns,
            );
        }
        let _ = writeln!(s, "  ]");
        let _ = write!(s, "}}");
        s
    }

    /// Writes `BENCH_<name>.json` (unless disabled) and prints where.
    pub fn finish(self) {
        let dir = std::env::var("LDL_BENCH_JSON_DIR").unwrap_or_else(|_| ".".to_string());
        if dir == "-" {
            return;
        }
        if let Err(e) = std::fs::create_dir_all(&dir) {
            eprintln!("could not create {dir}: {e}");
            return;
        }
        let path = format!("{dir}/BENCH_{}.json", self.name);
        match std::fs::write(&path, self.to_json()) {
            Ok(()) => println!("wrote {path}"),
            Err(e) => eprintln!("could not write {path}: {e}"),
        }
    }
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn fmt_ns(ns: u128) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_aggregate_sanely() {
        let mut h = Harness::new("selftest");
        h.set_iters(0, 7);
        h.env_iters = None; // the test must not depend on the caller's env
        let mut x = 0u64;
        h.bench("g", "count", || {
            for i in 0..1000 {
                x = x.wrapping_add(i);
            }
            x
        });
        let r = &h.records()[0];
        assert_eq!(r.iters, 7);
        assert!(r.min_ns <= r.median_ns);
        assert!(r.median_ns <= r.p95_ns);
        assert!(r.mean_ns > 0);
    }

    #[test]
    fn json_shape_is_stable() {
        let mut h = Harness::new("jsontest");
        h.set_iters(0, 3);
        h.env_iters = None;
        h.bench("grp", "lbl/1", || 1 + 1);
        let json = h.to_json();
        assert!(json.contains("\"name\": \"jsontest\""));
        assert!(json.contains("\"group\": \"grp\""));
        assert!(json.contains("\"label\": \"lbl/1\""));
        assert!(json.contains("\"median_ns\":"));
        assert!(json.contains("\"p95_ns\":"));
        assert!(json.starts_with('{') && json.ends_with('}'));
    }

    #[test]
    fn escape_handles_quotes() {
        assert_eq!(escape("a\"b\\c"), "a\\\"b\\\\c");
    }

    #[test]
    fn fmt_ns_units() {
        assert_eq!(fmt_ns(500), "500 ns");
        assert_eq!(fmt_ns(1_500), "1.50 µs");
        assert_eq!(fmt_ns(2_500_000), "2.50 ms");
        assert_eq!(fmt_ns(3_000_000_000), "3.00 s");
    }
}
