//! Scoped worker-pool helper.
//!
//! The fixpoint evaluators fan one round's rule firings out over
//! `std::thread::scope` workers. This module supplies the one primitive
//! they need: run `jobs` closures on up to `threads` workers and hand
//! the results back **in job order**, so callers can merge worker
//! output deterministically regardless of scheduling. Workers pull job
//! indices from a shared atomic counter (self-balancing: a slow job
//! does not idle the other workers), and a panic inside any job is
//! re-raised on the caller's thread with its original payload.
//!
//! No threads outlive a call and no state persists between calls — the
//! pool is scoped, not global, which keeps the workspace free of
//! shutdown logic and extra dependencies.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Default worker count for parallel evaluation: the `LDL_EVAL_THREADS`
/// environment variable when set to a positive integer, otherwise
/// [`std::thread::available_parallelism`] (1 if unknown).
pub fn default_threads() -> usize {
    if let Ok(v) = std::env::var("LDL_EVAL_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Runs `f(0), f(1), …, f(jobs - 1)` on up to `threads` scoped workers
/// and returns the results indexed by job, i.e. exactly what the serial
/// `(0..jobs).map(f).collect()` returns. With `threads <= 1` (or fewer
/// than two jobs) it *is* that serial loop — no threads are spawned.
pub fn scoped_map<T, F>(threads: usize, jobs: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if jobs == 0 {
        return Vec::new();
    }
    let workers = threads.min(jobs);
    if workers <= 1 {
        return (0..jobs).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let batches: Vec<Vec<(usize, T)>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                s.spawn(|| {
                    let mut local: Vec<(usize, T)> = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= jobs {
                            break;
                        }
                        local.push((i, f(i)));
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or_else(|e| std::panic::resume_unwind(e)))
            .collect()
    });
    let mut slots: Vec<Option<T>> = Vec::with_capacity(jobs);
    slots.resize_with(jobs, || None);
    for batch in batches {
        for (i, v) in batch {
            slots[i] = Some(v);
        }
    }
    slots
        .into_iter()
        .map(|o| o.expect("every job index was claimed exactly once"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn results_come_back_in_job_order() {
        for threads in [1, 2, 4, 8] {
            let out = scoped_map(threads, 100, |i| i * 3);
            assert_eq!(
                out,
                (0..100).map(|i| i * 3).collect::<Vec<_>>(),
                "threads={threads}"
            );
        }
    }

    #[test]
    fn every_job_runs_exactly_once() {
        let counters: Vec<AtomicUsize> = (0..64).map(|_| AtomicUsize::new(0)).collect();
        scoped_map(4, 64, |i| counters[i].fetch_add(1, Ordering::SeqCst));
        assert!(counters.iter().all(|c| c.load(Ordering::SeqCst) == 1));
    }

    #[test]
    fn zero_jobs_yield_empty() {
        let out: Vec<u8> = scoped_map(4, 0, |_| unreachable!("no jobs to run"));
        assert!(out.is_empty());
    }

    #[test]
    fn worker_panic_propagates_with_payload() {
        let r = catch_unwind(AssertUnwindSafe(|| {
            scoped_map(3, 10, |i| {
                if i == 7 {
                    panic!("job seven failed");
                }
                i
            });
        }));
        let e = r.unwrap_err();
        let msg = e.downcast_ref::<&str>().copied().unwrap_or("");
        assert!(msg.contains("job seven failed"), "payload lost: {msg:?}");
    }

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
    }
}
